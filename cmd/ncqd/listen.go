package main

import (
	"net"
	"net/http"
)

// newListener opens the server's TCP listener separately from Serve so
// run can report the bound address (and tests can use ":0").
func newListener(srv *http.Server) (net.Listener, error) {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	return net.Listen("tcp", addr)
}
