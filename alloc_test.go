package ncq

// Allocation-regression pins for the columnar hot path: the compact
// posting lists make a warm single-token search a slice view plus one
// copy, and the pooled roll-up scratch makes a warm meet allocate
// O(results). These ceilings are the measured steady state plus a
// small headroom for toolchain variance — a revert to per-query maps
// blows straight through them.

import "testing"

func allocDB(t *testing.T) *Database {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("allocation pinning skipped in -short mode")
	}
	return fig1DB(t)
}

func TestSearchAllocsSteadyState(t *testing.T) {
	db := allocDB(t)
	db.Search("Ben") // warm the pools and lazy indexes
	got := testing.AllocsPerRun(200, func() {
		if len(db.Search("Ben")) != 1 {
			t.Fatal("unexpected hit count")
		}
	})
	// One []fulltext.Hit, one []ncq.Hit, plus rendering each hit's
	// path string for the public result type.
	if got > 14 {
		t.Errorf("warm single-token Search allocates %.0f/op, pinned at <= 14", got)
	}
}

func TestMeetOfTermsAllocsSteadyState(t *testing.T) {
	db := allocDB(t)
	if _, _, err := db.MeetOfTerms(nil, "Bit", "1999"); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
		if err != nil || len(meets) != 1 {
			t.Fatalf("meets = %v, err = %v", meets, err)
		}
	})
	// The full unified pipeline: two substring searches, the pooled
	// roll-up, result wrapping, ranking and paging.
	if got > 40 {
		t.Errorf("warm two-term MeetOfTerms allocates %.0f/op, pinned at <= 40", got)
	}
}
