package ncq

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

// bigBib builds a bibliography whose root has many records — the shape
// sharding is for.
func bigBib(records int) *xmltree.Document {
	return xmltree.MustDocument("bib", func(b *xmltree.Builder) {
		for i := 0; i < records; i++ {
			rec := b.Element(b.Root(), "article")
			b.Text(b.Element(rec, "author"), fmt.Sprintf("Author%d", i))
			b.Text(b.Element(rec, "year"), fmt.Sprintf("%d", 1990+i%10))
		}
	})
}

func TestAddShardedBasics(t *testing.T) {
	c := NewCorpus()
	doc := bigBib(20)
	added, replaced, err := c.AddSharded("bib", doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 4 || replaced {
		t.Fatalf("AddSharded = (%d dbs, %t)", len(added), replaced)
	}
	if got := AggregateStats(added); got.Nodes != doc.Len()+3 {
		t.Errorf("AggregateStats(added).Nodes = %d, want %d", got.Nodes, doc.Len()+3)
	}
	if !c.Has("bib") || c.Len() != 1 || c.ShardCount("bib") != 4 {
		t.Errorf("Has=%t Len=%d ShardCount=%d", c.Has("bib"), c.Len(), c.ShardCount("bib"))
	}
	if _, ok := c.Get("bib"); ok {
		t.Error("Get resolved a sharded member to a single database")
	}
	dbs, ok := c.Shards("bib")
	if !ok || len(dbs) != 4 {
		t.Fatalf("Shards = %d dbs, ok=%t", len(dbs), ok)
	}
	st, shards, ok := c.MemberStats("bib")
	if !ok || shards != 4 {
		t.Fatalf("MemberStats shards = %d, ok=%t", shards, ok)
	}
	// Every original node lands in exactly one shard: aggregated node
	// count equals the unsharded document plus one extra root per
	// additional shard.
	if want := doc.Len() + 3; st.Nodes != want {
		t.Errorf("aggregated nodes = %d, want %d", st.Nodes, want)
	}

	// Replacement across kinds keeps the position and bumps the
	// generation.
	gen := c.Generation()
	db, err := OpenString(`<bib><article><author>Solo</author></article></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	if replaced, err := c.Put("bib", db); err != nil || !replaced {
		t.Fatalf("Put over sharded: replaced=%t err=%v", replaced, err)
	}
	if c.ShardCount("bib") != 1 || c.Generation() == gen {
		t.Errorf("ShardCount=%d gen=%d (was %d)", c.ShardCount("bib"), c.Generation(), gen)
	}
	if _, replaced, err := c.AddSharded("bib", doc, 2); err != nil || !replaced {
		t.Fatalf("AddSharded over plain: replaced=%t err=%v", replaced, err)
	}
	if !c.Remove("bib") || c.Has("bib") || c.Len() != 0 {
		t.Error("Remove did not evict the sharded member")
	}
}

func TestAddShardedErrors(t *testing.T) {
	c := NewCorpus()
	if _, _, err := c.AddSharded("x", nil, 2); err == nil {
		t.Error("nil document accepted")
	}
	if _, _, err := c.MeetOfTermsIn("ghost", nil, "a"); err == nil {
		t.Error("unknown member accepted")
	} else if !strings.Contains(err.Error(), "unknown document") {
		t.Errorf("error = %v", err)
	}
	if _, err := c.QueryIn("ghost", "SELECT tag(e) FROM //a AS e"); err == nil {
		t.Error("unknown member accepted by QueryIn")
	}
}

// TestShardedMeetMerging: a sharded member answers under its logical
// name with 1-based shard attribution, ranked by distance.
func TestShardedMeetMerging(t *testing.T) {
	c := NewCorpus()
	if _, _, err := c.AddSharded("bib", bigBib(12), 3); err != nil {
		t.Fatal(err)
	}
	meets, _, err := c.MeetOfTermsIn("bib", ExcludeRoot(), "Author", "199")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) == 0 {
		t.Fatal("no meets")
	}
	shardsSeen := map[int]bool{}
	for i, m := range meets {
		if m.Source != "bib" {
			t.Errorf("meet %d: source %q", i, m.Source)
		}
		if m.Shard < 1 || m.Shard > 3 {
			t.Errorf("meet %d: shard %d out of range", i, m.Shard)
		}
		shardsSeen[m.Shard] = true
		if i > 0 && meets[i-1].Distance > m.Distance {
			t.Errorf("meets not ranked: %d before %d", meets[i-1].Distance, m.Distance)
		}
	}
	if len(shardsSeen) != 3 {
		t.Errorf("answers came from %d shards, want 3", len(shardsSeen))
	}

	// The corpus-wide meet reports the same logical source.
	all, err := c.MeetOfTerms(ExcludeRoot(), "Author", "199")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(meets) {
		t.Errorf("corpus-wide found %d meets, member query %d", len(all), len(meets))
	}
}

// TestShardedQueryMerging: the query language resolves a sharded
// member into one merged answer.
func TestShardedQueryMerging(t *testing.T) {
	doc := bigBib(10)
	plain, err := FromDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(`SELECT tag(e) FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}

	c := NewCorpus()
	if _, _, err := c.AddSharded("bib", doc, 4); err != nil {
		t.Fatal(err)
	}
	got, err := c.QueryIn("bib", `SELECT tag(e) FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("sharded query: %d rows, unsharded %d", len(got.Rows), len(want.Rows))
	}

	// Corpus-wide query merges the shards under one source.
	answers, err := c.Query(`SELECT tag(e) FROM //year AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0].Source != "bib" {
		t.Fatalf("answers = %+v", answers)
	}
	if len(answers[0].Answer.Rows) != len(want.Rows) {
		t.Errorf("merged rows = %d, want %d", len(answers[0].Answer.Rows), len(want.Rows))
	}

	// A meet query's merged rows stay ranked by distance.
	const mq = `SELECT meet(e1, e2; EXCLUDE /bib)
		FROM //author/cdata AS e1, //year/cdata AS e2
		WHERE e1 CONTAINS 'Author' AND e2 CONTAINS '199'`
	merged, err := c.QueryIn("bib", mq)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.IsMeet || len(merged.Rows) == 0 {
		t.Fatalf("meet query: is_meet=%t rows=%d", merged.IsMeet, len(merged.Rows))
	}
	for i := 1; i < len(merged.Rows); i++ {
		if merged.Rows[i-1].Distance > merged.Rows[i].Distance {
			t.Errorf("merged meet rows not ranked at %d", i)
		}
	}
	wantMeet, err := plain.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rows) != len(wantMeet.Rows) {
		t.Errorf("merged meet rows = %d, unsharded %d", len(merged.Rows), len(wantMeet.Rows))
	}
}

// meetSignature renders a meet as a shard-independent string: result
// path, distance, and the (path, value) pairs of its witnesses. OIDs
// are deliberately absent — shards renumber nodes.
func meetSignature(db *Database, m Meet) string {
	wit := make([]string, len(m.Witnesses))
	for i, w := range m.Witnesses {
		wit[i] = db.Path(w) + "=" + db.Value(w)
	}
	sort.Strings(wit)
	return fmt.Sprintf("%s d%d [%s]", m.Path, m.Distance, strings.Join(wit, ","))
}

// TestShardedEqualsUnsharded is the merge-correctness property: for
// random documents and random term queries, a sharded member returns
// exactly the answer set of the unsharded document — same concepts,
// same distances, same witnesses. The root must be excluded: witnesses
// living in different shards can only meet at the document root, which
// a sharded member cannot represent (and which large-corpus queries
// exclude anyway, per the paper's case study).
func TestShardedEqualsUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	terms := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for trial := 0; trial < 40; trial++ {
		doc := xmltree.Random(r, 500)
		k := 2 + r.Intn(6)
		nTerms := 2 + r.Intn(2)
		query := make([]string, nTerms)
		for i := range query {
			query[i] = terms[r.Intn(len(terms))]
		}

		plain, err := FromDocument(doc)
		if err != nil {
			t.Fatal(err)
		}
		wantMeets, _, err := plain.MeetOfTerms(ExcludeRoot(), query...)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, len(wantMeets))
		for i, m := range wantMeets {
			want[i] = meetSignature(plain, m)
		}
		sort.Strings(want)

		c := NewCorpus()
		if _, _, err := c.AddSharded("doc", doc, k); err != nil {
			t.Fatal(err)
		}
		gotMeets, _, err := c.MeetOfTermsIn("doc", ExcludeRoot(), query...)
		if err != nil {
			t.Fatal(err)
		}
		shards, _ := c.Shards("doc")
		got := make([]string, len(gotMeets))
		for i, m := range gotMeets {
			shardDB := shards[0]
			if m.Shard > 0 {
				shardDB = shards[m.Shard-1]
			}
			got[i] = meetSignature(shardDB, m.Meet)
		}
		sort.Strings(got)

		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d, terms=%v): sharded %d meets, unsharded %d\nsharded:   %v\nunsharded: %v",
				trial, k, query, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d, terms=%v): meet %d differs\nsharded:   %s\nunsharded: %s",
					trial, k, query, i, got[i], want[i])
			}
		}
	}
}
