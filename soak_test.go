package ncq_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncq"
	"ncq/internal/datagen"
	"ncq/internal/server"
	"ncq/internal/xmltree"
)

// TestSoakLargeBibliography pushes a Figure 7-scale document (~90k
// nodes) through every layer: generate, serialise, parse, shred,
// validate, query, snapshot, reload, re-verify. Skipped with -short.
func TestSoakLargeBibliography(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := datagen.DefaultDBLPConfig() // 75 pubs per venue and year
	doc := datagen.DBLP(cfg)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	var xml strings.Builder
	if err := doc.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := ncq.OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Nodes < 80000 {
		t.Fatalf("unexpectedly small soak document: %+v", st)
	}

	// Reassembly is lossless at scale.
	var back strings.Builder
	if err := db.WriteXML(&back, false); err != nil {
		t.Fatal(err)
	}
	doc2, err := xmltree.ParseString(back.String())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, doc2) {
		t.Fatal("document changed across load/serialise at scale")
	}

	// Every year's query returns exactly the expected cardinality.
	for year := 1984; year <= 1999; year++ {
		meets, _, err := db.MeetOfTerms(ncq.ExcludeRoot(), "ICDE", fmt.Sprintf("%d", year))
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.PubsPerVenueYear
		if year == datagen.ICDEYearMissing {
			want = 0
		}
		// The two planted false-positive page ranges may add one hit
		// for their target year.
		extra := 0
		if year == 1993 || year == 1996 {
			extra = 1
		}
		if len(meets) != want+extra {
			t.Errorf("ICDE %d: %d results, want %d", year, len(meets), want+extra)
		}
	}

	// Snapshot round trip preserves behaviour at scale.
	var snap bytes.Buffer
	if err := db.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	db2, err := ncq.OpenSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := db.MeetOfTerms(ncq.ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db2.MeetOfTerms(ncq.ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("snapshot changed answers: %d vs %d", len(a), len(b))
	}
}

// TestSoakServingChurn drives a tightly admission-limited server with
// mixed mutation/query/stream churn from many parallel clients and
// asserts the production serving posture: overload degrades into fast
// 429s carrying Retry-After — never 5xx, never unbounded queueing —
// and the node keeps answering the admitted work correctly
// throughout. Skipped with -short.
func TestSoakServingChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	doc := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1984, YearTo: 1999, PubsPerVenueYear: 40})
	var xml strings.Builder
	if err := doc.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	corpus := ncq.NewCorpus()
	db, err := ncq.OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.Add("dblp", db); err != nil {
		t.Fatal(err)
	}

	// One execution slot, no queue, no grace wait: any two requests
	// in flight at once means one is shed. Under 16 parallel clients
	// that is certain, which is the point.
	srv := server.New(corpus, server.WithAdmission(1, 0, 0))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const (
		clients = 16
		iters   = 25
	)
	var (
		ok200, shed429, gone410 atomic.Int64
		unexpected              sync.Map // status -> body sample
		slowShed                atomic.Int64
	)
	tally := func(resp *http.Response, start time.Time) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode < 300:
			ok200.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			shed429.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			// Shedding must be immediate — that is what prevents
			// latency collapse. The bound is generous for CI noise; the
			// limiter is configured with no grace wait at all.
			if time.Since(start) > 5*time.Second {
				slowShed.Add(1)
			}
		case resp.StatusCode == http.StatusGone:
			gone410.Add(1) // a cursor raced a mutation; legitimate
		default:
			unexpected.Store(resp.StatusCode, fmt.Sprintf("status %d", resp.StatusCode))
		}
	}
	post := func(cl *http.Client, path, body string) (*http.Response, error) {
		return cl.Post(ts.URL+path, "application/json", strings.NewReader(body))
	}
	var wg sync.WaitGroup

	// The saturation lever is a slow client: admission grants the slot
	// when the route dispatches — before the body has arrived — so a
	// trickled request body occupies the single execution slot for the
	// duration. That is exactly the degenerate consumer an operator
	// configures admission control against, and unlike raw request
	// volume it saturates deterministically on any machine, including
	// single-CPU CI runners where sub-millisecond handlers never
	// overlap on their own.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := &http.Client{Timeout: 30 * time.Second}
		for i := 0; i < 10; i++ {
			pr, pw := io.Pipe()
			go func() {
				io.WriteString(pw, `{"terms":["ICDE",`)
				time.Sleep(40 * time.Millisecond)
				io.WriteString(pw, `"1999"],"exclude_root":true,"limit":3}`)
				pw.Close()
			}()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/query", pr)
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			start := time.Now()
			resp, err := cl.Do(req)
			if err != nil {
				t.Errorf("saturator iter %d: %v", i, err)
				return
			}
			tally(resp, start)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < iters; i++ {
				var (
					resp *http.Response
					err  error
				)
				year := 1984 + (c*7+i)%16
				start := time.Now()
				switch i % 5 {
				case 0: // mutation: purges the cache, keeps queries cold
					req, rerr := http.NewRequest(http.MethodPut,
						fmt.Sprintf("%s/v1/docs/churn-%d", ts.URL, c),
						strings.NewReader(fmt.Sprintf("<bib><book><author>Churn%d</author><year>%d</year></book></bib>", c, year)))
					if rerr != nil {
						t.Error(rerr)
						return
					}
					resp, err = cl.Do(req)
				case 1: // NDJSON stream across the corpus
					resp, err = post(cl, "/v2/query?stream=1",
						fmt.Sprintf(`{"terms":["ICDE","%d"],"exclude_root":true,"limit":5}`, year))
				default: // plain queries
					resp, err = post(cl, "/v2/query",
						fmt.Sprintf(`{"terms":["ICDE","%d"],"exclude_root":true,"limit":5}`, year))
				}
				if err != nil {
					t.Errorf("client %d iter %d: %v", c, i, err)
					return
				}
				tally(resp, start)
			}
		}(c)
	}
	wg.Wait()

	unexpected.Range(func(k, v any) bool {
		t.Errorf("unexpected response under churn: %v", v)
		return true
	})
	if slowShed.Load() > 0 {
		t.Errorf("%d rejections took > 5s; shedding must be immediate", slowShed.Load())
	}
	if ok200.Load() == 0 {
		t.Error("no request succeeded under churn")
	}
	if shed429.Load() == 0 {
		t.Error("no request was shed; the churn never saturated admission — tighten the limits")
	}
	t.Logf("churn: %d ok, %d shed (429), %d gone (410)", ok200.Load(), shed429.Load(), gone410.Load())

	// The node ends responsive and truthful: a fresh query answers, and
	// the stats it reports agree with what the clients saw.
	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"terms":["ICDE","1999"],"exclude_root":true,"limit":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-churn query: %d", resp.StatusCode)
	}
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Admission struct {
			Rejected uint64 `json:"rejected"`
			InFlight int    `json:"in_flight"`
			Queued   int    `json:"queued"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if int64(stats.Admission.Rejected) != shed429.Load() {
		t.Errorf("stats report %d rejections, clients saw %d", stats.Admission.Rejected, shed429.Load())
	}
	if stats.Admission.InFlight != 0 || stats.Admission.Queued != 0 {
		t.Errorf("limiter not drained after churn: %+v", stats.Admission)
	}
}
