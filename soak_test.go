package ncq

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ncq/internal/datagen"
	"ncq/internal/xmltree"
)

// TestSoakLargeBibliography pushes a Figure 7-scale document (~90k
// nodes) through every layer: generate, serialise, parse, shred,
// validate, query, snapshot, reload, re-verify. Skipped with -short.
func TestSoakLargeBibliography(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := datagen.DefaultDBLPConfig() // 75 pubs per venue and year
	doc := datagen.DBLP(cfg)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	var xml strings.Builder
	if err := doc.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Nodes < 80000 {
		t.Fatalf("unexpectedly small soak document: %+v", st)
	}

	// Reassembly is lossless at scale.
	var back strings.Builder
	if err := db.WriteXML(&back, false); err != nil {
		t.Fatal(err)
	}
	doc2, err := xmltree.ParseString(back.String())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, doc2) {
		t.Fatal("document changed across load/serialise at scale")
	}

	// Every year's query returns exactly the expected cardinality.
	for year := 1984; year <= 1999; year++ {
		meets, _, err := db.MeetOfTerms(ExcludeRoot(), "ICDE", fmt.Sprintf("%d", year))
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.PubsPerVenueYear
		if year == datagen.ICDEYearMissing {
			want = 0
		}
		// The two planted false-positive page ranges may add one hit
		// for their target year.
		extra := 0
		if year == 1993 || year == 1996 {
			extra = 1
		}
		if len(meets) != want+extra {
			t.Errorf("ICDE %d: %d results, want %d", year, len(meets), want+extra)
		}
	}

	// Snapshot round trip preserves behaviour at scale.
	var snap bytes.Buffer
	if err := db.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := db.MeetOfTerms(ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db2.MeetOfTerms(ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("snapshot changed answers: %d vs %d", len(a), len(b))
	}
}
