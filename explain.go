package ncq

import (
	"fmt"
	"strings"

	"ncq/internal/core"
)

// This file exposes the Section 3.1 interpretations of the meet: the
// shortest path between two nodes and the relative contexts of the
// witnesses with respect to their nearest concept, plus a human-
// readable explanation built from them.

// PathBetween returns the nodes on the unique tree path from a to b,
// inclusive; its length in edges equals Dist(a, b).
func (db *Database) PathBetween(a, b NodeID) ([]NodeID, error) {
	p, err := core.PathBetween(db.store, a, b)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	return p, nil
}

// Context returns the label steps leading from ancestor down to node
// (exclusive of the ancestor, inclusive of the node) — "the context of
// o with respect to the meet" from the paper's Section 3.1. For
// node == ancestor the context is empty.
func (db *Database) Context(ancestor, node NodeID) ([]string, error) {
	c, err := core.Context(db.store, ancestor, node)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	return c, nil
}

// Explain renders a meet for humans: the concept's tag followed by one
// line per witness showing its relative context and its value, e.g.
//
//	<article> connects:
//	  · author/lastname/cdata = "Bit"
//	  · year/cdata = "1999"
func (db *Database) Explain(m Meet) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<%s> connects:\n", m.Tag)
	for _, w := range m.Witnesses {
		ctx, err := db.Context(m.Node, w)
		if err != nil {
			return "", err
		}
		loc := strings.Join(ctx, "/")
		if loc == "" {
			loc = "(the concept itself)"
		}
		fmt.Fprintf(&sb, "  · %s = %q\n", loc, db.Value(w))
	}
	return sb.String(), nil
}
