package ncq

// Tests for the vague-constraints query mode: the zero-spec
// equivalence property (a Vague spec with no slack and no expansion is
// byte-for-byte the exact engine, down to cursors), and the
// ranked-retrieval quality gates on the two synthetic datasets — a
// misspelled restrict pattern on the bibliography and a restructured
// one on the multimedia document must still surface the known-relevant
// records at the top of the blended ranking.

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ncq/internal/datagen"
)

// vagueTestCorpus builds a small mixed corpus: the bibliography as a
// plain member and the multimedia document sharded, so both fan-out
// shapes are exercised.
func vagueTestCorpus(t testing.TB) *Corpus {
	t.Helper()
	c := NewCorpus()
	var xml strings.Builder
	dblp := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1988, YearTo: 1994, PubsPerVenueYear: 3})
	if err := dblp.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("dblp", db); err != nil {
		t.Fatal(err)
	}
	mm := datagen.Multimedia(datagen.MultimediaConfig{Seed: 2, Items: 40, MaxProbeDistance: 8})
	if _, _, err := c.AddSharded("mm", mm, 3); err != nil {
		t.Fatal(err)
	}
	return c
}

// marshalRun executes req and returns the result as canonical JSON
// with the wall-time zeroed, for byte comparison.
func marshalRun(t *testing.T, q Querier, req Request) ([]byte, *Result) {
	t.Helper()
	res, err := q.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run(%+v): %v", req, err)
	}
	res.Elapsed = 0
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw, res
}

// drainMeets collects a Results stream into marshalled meet lines.
func drainMeets(t *testing.T, c *Corpus, req Request) []string {
	t.Helper()
	var lines []string
	for m, err := range c.Results(context.Background(), req) {
		if err != nil {
			t.Fatalf("Results(%+v): %v", req, err)
		}
		raw, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(raw))
	}
	return lines
}

// TestVagueZeroSlackEqualsExact is the randomized equivalence
// property: a request carrying the zero Vague spec ({max_slack:0,
// expand:false}) answers byte-identically to the same request without
// it — Run envelopes, Results streams, canonical encodings, and
// cursors minted by one mode consumed by the other.
func TestVagueZeroSlackEqualsExact(t *testing.T) {
	c := vagueTestCorpus(t)
	pool := []string{"ICDE", "1993", "199", "probeA3", "probeB3", "jpeg", "nosuchterm"}
	docs := []string{"", "", "dblp", "mm"}
	rng := rand.New(rand.NewSource(7))

	sawMeets := false
	for i := 0; i < 40; i++ {
		req := Request{Doc: docs[rng.Intn(len(docs))]}
		for n := 1 + rng.Intn(2); n > 0; n-- {
			req.Terms = append(req.Terms, pool[rng.Intn(len(pool))])
		}
		if rng.Intn(2) == 0 {
			req.Options = ExcludeRoot()
		}
		if rng.Intn(3) == 0 {
			req.Limit = 1 + rng.Intn(8)
		}
		vreq := req
		vreq.Vague = &Vague{} // the zero spec

		if got, want := vreq.Canonical(), req.Canonical(); got != want {
			t.Fatalf("case %d: canonical %q != exact %q", i, got, want)
		}
		exact, exactRes := marshalRun(t, c, req)
		vague, vagueRes := marshalRun(t, c, vreq)
		if string(exact) != string(vague) {
			t.Fatalf("case %d (%+v):\nexact %s\nvague %s", i, req, exact, vague)
		}
		if len(exactRes.Meets) > 0 {
			sawMeets = true
		}

		eLines, vLines := drainMeets(t, c, req), drainMeets(t, c, vreq)
		if len(eLines) != len(vLines) {
			t.Fatalf("case %d: streamed %d exact, %d vague", i, len(eLines), len(vLines))
		}
		for j := range eLines {
			if eLines[j] != vLines[j] {
				t.Fatalf("case %d meet %d: %s != %s", i, j, eLines[j], vLines[j])
			}
		}

		// Cursor interchange: a page chain started in one mode
		// continues in the other — the fingerprints must agree.
		if exactRes.Truncated {
			next := req
			next.Cursor = exactRes.NextCursor
			vnext := next
			vnext.Vague = &Vague{}
			page2e, _ := marshalRun(t, c, next)
			page2v, _ := marshalRun(t, c, vnext)
			if string(page2e) != string(page2v) {
				t.Fatalf("case %d page 2:\nexact %s\nvague %s", i, page2e, page2v)
			}
		}
		_ = vagueRes
	}
	if !sawMeets {
		t.Fatal("workload degenerate: no case produced any meets")
	}
}

// TestVagueQualityDBLPMisspelled pins the bibliography quality gate: a
// restrict pattern with a misspelled label ("inprocedings") finds
// nothing in exact mode, while vague mode with a slack budget of 2
// recovers exactly the answer set of the correctly-spelled restrict,
// every meet shifted by the blended cost of one unit of slack and the
// known-relevant records ranked in the same order.
func TestVagueQualityDBLPMisspelled(t *testing.T) {
	var xml strings.Builder
	doc := datagen.DBLP(datagen.DBLPConfig{Seed: 1, YearFrom: 1988, YearTo: 1994, PubsPerVenueYear: 4})
	if err := doc.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}

	control, err := db.Run(context.Background(),
		Request{Terms: []string{"ICDE", "1993"}, Options: ExcludeRoot().Restrict("/dblp/inproceedings")})
	if err != nil {
		t.Fatal(err)
	}
	if len(control.Meets) == 0 {
		t.Fatal("control query found nothing; generator changed?")
	}

	misspelled := Request{Terms: []string{"ICDE", "1993"},
		Options: ExcludeRoot().Restrict("/dblp/inprocedings")}
	exact, err := db.Run(context.Background(), misspelled)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Meets) != 0 {
		t.Fatalf("exact misspelled restrict matched %d meets; want 0", len(exact.Meets))
	}

	misspelled.Vague = &Vague{MaxSlack: 2}
	vague, err := db.Run(context.Background(), misspelled)
	if err != nil {
		t.Fatal(err)
	}
	if len(vague.Meets) != len(control.Meets) {
		t.Fatalf("vague found %d meets, control %d", len(vague.Meets), len(control.Meets))
	}
	for i, m := range vague.Meets {
		want := control.Meets[i]
		if m.Node != want.Node || m.Path != want.Path || m.Tag != "inproceedings" {
			t.Fatalf("meet %d: got %+v, control %+v", i, m.Meet, want.Meet)
		}
		// One unit of slack (the misspelled label, edit distance 1)
		// blended at the configured weight.
		if m.Distance != want.Distance+2 {
			t.Fatalf("meet %d: blended distance %d, control %d", i, m.Distance, want.Distance)
		}
	}
	for i := 0; i < 5 && i < len(vague.Meets); i++ {
		if vague.Meets[i].Tag != "inproceedings" {
			t.Fatalf("rank %d is %q, want inproceedings", i, vague.Meets[i].Tag)
		}
	}
	if got := vague.RelaxationsBySlack; len(got) != 3 || got[1] != len(vague.Meets) || got[2] != 0 {
		t.Fatalf("RelaxationsBySlack = %v, want [0 %d 0]", got, len(vague.Meets))
	}
}

// TestVagueQualityMultimediaRestructured pins the multimedia quality
// gate: a restrict pattern written against a remembered-wrong document
// shape ("/collection/probe/fork", missing the probes level) is dead
// in exact mode; one unit of structural slack re-admits the real path
// and the planted probe pair ranks first at its blended distance.
func TestVagueQualityMultimediaRestructured(t *testing.T) {
	var xml strings.Builder
	doc := datagen.Multimedia(datagen.MultimediaConfig{Seed: 2, Items: 40, MaxProbeDistance: 8})
	if err := doc.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	termA, termB := datagen.ProbeTerms(3)

	control, err := db.Run(context.Background(),
		Request{Terms: []string{termA, termB}, Options: ExcludeRoot().Restrict("/collection/probes/probe/fork")})
	if err != nil {
		t.Fatal(err)
	}
	if len(control.Meets) != 1 || control.Meets[0].Tag != "fork" {
		t.Fatalf("control meets = %+v; want exactly the fork", control.Meets)
	}

	req := Request{Terms: []string{termA, termB},
		Options: ExcludeRoot().Restrict("/collection/probe/fork")}
	exact, err := db.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Meets) != 0 {
		t.Fatalf("exact restructured restrict matched %d meets; want 0", len(exact.Meets))
	}

	req.Vague = &Vague{MaxSlack: 1}
	vague, err := db.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(vague.Meets) != 1 {
		t.Fatalf("vague meets = %+v; want exactly one", vague.Meets)
	}
	top := vague.Meets[0]
	want := control.Meets[0]
	if top.Node != want.Node || top.Tag != "fork" || top.Distance != want.Distance+2 {
		t.Fatalf("rank 1 = %+v; control %+v", top.Meet, want.Meet)
	}
}

// TestVagueThesaurusExpansion pins the expand side of the mode: a
// corpus-installed thesaurus maps an unknown query term onto the
// planted probe marker, and {expand:true} alone (no structural slack)
// recovers the exact-mode answer for the synonymous terms.
func TestVagueThesaurusExpansion(t *testing.T) {
	c := NewCorpus()
	mm := datagen.Multimedia(datagen.MultimediaConfig{Seed: 2, Items: 40, MaxProbeDistance: 8})
	var xml strings.Builder
	if err := mm.WriteXML(&xml, false); err != nil {
		t.Fatal(err)
	}
	db, err := OpenString(xml.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("mm", db); err != nil {
		t.Fatal(err)
	}
	termA, termB := datagen.ProbeTerms(3)

	control, err := c.Run(context.Background(),
		Request{Terms: []string{termA, termB}, Options: ExcludeRoot()})
	if err != nil {
		t.Fatal(err)
	}
	if len(control.Meets) != 1 {
		t.Fatalf("control meets = %+v", control.Meets)
	}

	// Without the thesaurus the synonym is just an unknown term.
	blind, err := c.Run(context.Background(),
		Request{Terms: []string{"probex", termB}, Options: ExcludeRoot(), Vague: &Vague{Expand: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(blind.Meets) != 0 {
		t.Fatalf("expansion without thesaurus matched %+v", blind.Meets)
	}

	c.SetThesaurus(NewThesaurus().Add("probex", termA))
	got, err := c.Run(context.Background(),
		Request{Terms: []string{"probex", termB}, Options: ExcludeRoot(), Vague: &Vague{Expand: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Meets) != 1 || got.Meets[0].Node != control.Meets[0].Node ||
		got.Meets[0].Distance != control.Meets[0].Distance {
		t.Fatalf("expanded meets = %+v; control %+v", got.Meets, control.Meets)
	}

	// Exact mode ignores the installed thesaurus entirely.
	off, err := c.Run(context.Background(),
		Request{Terms: []string{"probex", termB}, Options: ExcludeRoot()})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Meets) != 0 {
		t.Fatalf("exact mode expanded terms: %+v", off.Meets)
	}
}

// TestVagueValidation pins the request-level contract.
func TestVagueValidation(t *testing.T) {
	c := vagueTestCorpus(t)
	cases := []Request{
		{Query: "SELECT meet(e1, e2) FROM //year AS e1, //author AS e2", Vague: &Vague{MaxSlack: 1}},
		{Terms: []string{"ICDE"}, Vague: &Vague{MaxSlack: -1}},
		{Terms: []string{"ICDE"}, Vague: &Vague{MaxSlack: MaxVagueSlack + 1}},
	}
	for i, req := range cases {
		if _, err := c.Run(context.Background(), req); err == nil {
			t.Errorf("case %d (%+v): accepted", i, req)
		}
	}
	if _, err := c.Run(context.Background(),
		Request{Terms: []string{"ICDE"}, Vague: &Vague{MaxSlack: MaxVagueSlack}}); err != nil {
		t.Errorf("max budget rejected: %v", err)
	}
}

// TestVagueCursorBoundToSpec pins that an active vague spec is part of
// the cursor fingerprint: a cursor minted by a vague request cannot be
// replayed with different vague parameters.
func TestVagueCursorBoundToSpec(t *testing.T) {
	c := vagueTestCorpus(t)
	req := Request{Terms: []string{"ICDE", "199"}, Options: ExcludeRoot(), Limit: 3,
		Vague: &Vague{MaxSlack: 1}}
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("workload too small for pagination")
	}
	for _, vg := range []*Vague{nil, {MaxSlack: 2}} {
		bad := req
		bad.Vague = vg
		bad.Cursor = res.NextCursor
		if _, err := c.Run(context.Background(), bad); err == nil {
			t.Errorf("cursor accepted under vague spec %+v", vg)
		}
	}
	good := req
	good.Cursor = res.NextCursor
	if _, err := c.Run(context.Background(), good); err != nil {
		t.Errorf("cursor rejected under its own spec: %v", err)
	}
}
