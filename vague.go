package ncq

// The vague-constraints query mode: path constraints match
// approximately (internal/vague's relaxation lattice over the path
// summary) and the score blends structural slack into meet distance.
// This file holds the request surface (the Vague spec) and the
// compilation of a vague request's options into the core engine —
// execution itself rides the ordinary incremental pipeline of
// results.go, which is what keeps the k-way merge, limit push-down,
// cursors and streaming working unchanged.

import (
	"errors"
	"fmt"

	"ncq/internal/core"
	"ncq/internal/pathexpr"
	"ncq/internal/pathsum"
	"ncq/internal/vague"
)

// MaxVagueSlack bounds Vague.MaxSlack — beyond it a relaxed pattern
// admits nearly every path and the ranking decays to noise.
const MaxVagueSlack = vague.SlackLimit

// Vague selects the approximate-constraints mode of a term request:
// the restrict patterns of Request.Options match paths within MaxSlack
// rewrites (label edit distance, skipped ancestors, dropped steps —
// see internal/vague for the cost model), and every answer's ranking
// distance is blended as distance + vague.SlackWeight·slack, so an
// answer found by bending a constraint must clearly beat the exact
// answers to outrank them. Exclude patterns stay exact: relaxing a
// blacklist would discard answers the user never asked to lose.
//
// Expand additionally routes every term through the corpus thesaurus
// (SetThesaurus), broadening each term to its synonym class. Synonym
// classes are token-based, so expanded terms use token (word) search
// semantics rather than the exact mode's substring semantics; with no
// thesaurus installed, expansion degrades to a token search on the
// literal terms.
//
// The zero spec ({"max_slack": 0, "expand": false}) is canonically —
// and byte-for-byte — equivalent to the exact request: every rewrite
// costs at least one slack, so a zero budget admits exactly the exact
// matches, and the request canonicalises identically (same cache
// entries, same cursor fingerprints).
type Vague struct {
	// MaxSlack is the structural-slack budget per restrict pattern and
	// path; 0 admits exact matches only. At most MaxVagueSlack.
	MaxSlack int `json:"max_slack"`

	// Expand broadens Terms through the corpus thesaurus.
	Expand bool `json:"expand,omitempty"`
}

// active reports whether the spec changes anything relative to the
// exact path — the nil-safe gate canonicalisation keys off.
func (v *Vague) active() bool {
	return v != nil && (v.MaxSlack > 0 || v.Expand)
}

// validate bounds the spec; nil is always valid (exact mode).
func (v *Vague) validate() error {
	if v == nil {
		return nil
	}
	if v.MaxSlack < 0 {
		return errors.New("ncq: vague: negative max_slack")
	}
	if v.MaxSlack > MaxVagueSlack {
		return fmt.Errorf("ncq: vague: max_slack %d exceeds the limit of %d", v.MaxSlack, MaxVagueSlack)
	}
	return nil
}

// canonical renders the spec for cache keys and cursor fingerprints.
// An inactive spec renders empty ON PURPOSE: a vague request that
// relaxes nothing and expands nothing is the exact request, and must
// share its cache entries and cursors byte for byte.
func (v *Vague) canonical() string {
	if !v.active() {
		return ""
	}
	return fmt.Sprintf(" vague=%d,%t", v.MaxSlack, v.Expand)
}

// vaguePlan is the per-member compilation of a vague request: the
// minimal slack of every admissible path (paths admitted exactly carry
// slack 0 and are omitted), and the relaxation counts the member's
// execution fills in as it blends — index = slack used, so index 0 is
// never touched.
type vaguePlan struct {
	slack        map[pathsum.PathID]int
	relaxBySlack []int
}

// blend folds each result's structural slack into its ranking distance
// and books the relaxations used. It runs on the raw core results,
// before the member's lazy rank heap is built, so the blended score IS
// the distance every later layer — heap, k-way merge, coordinator —
// orders by; nothing downstream knows vague mode exists.
func (p *vaguePlan) blend(results []core.Result) {
	for i := range results {
		if s := p.slack[results[i].Path]; s > 0 {
			results[i].Distance = vague.Blend(results[i].Distance, s)
			p.relaxBySlack[s]++
		}
	}
}

// compileVague lowers Options into core.Options the way compile does,
// except that restrict patterns select approximately: every path
// within vg.MaxSlack rewrites of a restrict pattern is admissible,
// tagged in the returned plan with its minimal slack across patterns.
// Exclude patterns (and the root exclusion) stay exact.
func (o *Options) compileVague(db *Database, vg *Vague) (*core.Options, *vaguePlan, error) {
	plan := &vaguePlan{
		slack:        map[pathsum.PathID]int{},
		relaxBySlack: make([]int, vg.MaxSlack+1),
	}
	if o == nil {
		return nil, plan, nil
	}
	opt := &core.Options{
		MaxLift:      o.maxLift,
		MaxDistance:  o.maxDistance,
		SkipExcluded: o.skipExcluded,
	}
	sum := db.store.Summary()
	if o.excludeRoot || len(o.excludePatterns) > 0 {
		opt.Exclude = map[pathsum.PathID]bool{}
		if o.excludeRoot {
			opt.Exclude[sum.Root()] = true
		}
		for _, src := range o.excludePatterns {
			pat, err := pathexpr.Compile(src)
			if err != nil {
				return nil, nil, fmt.Errorf("ncq: exclude pattern: %w", err)
			}
			for _, pid := range pat.SelectPaths(sum) {
				opt.Exclude[pid] = true
			}
		}
	}
	if len(o.restrictPatterns) > 0 {
		pats := make([]*pathexpr.Pattern, len(o.restrictPatterns))
		for i, src := range o.restrictPatterns {
			pat, err := pathexpr.Compile(src)
			if err != nil {
				return nil, nil, fmt.Errorf("ncq: restrict pattern: %w", err)
			}
			pats[i] = pat
		}
		// The admissible set is the union over patterns of the paths
		// within budget; a path admitted by several patterns keeps its
		// cheapest slack (iterating paths, not pattern-match maps, keeps
		// the walk deterministic).
		admissible := map[pathsum.PathID]bool{}
		for _, pid := range sum.AllPaths() {
			best, found := 0, false
			for _, pat := range pats {
				if s, ok := vague.Slack(pat, sum, pid, vg.MaxSlack); ok {
					if !found || s < best {
						best, found = s, true
					}
				}
			}
			if !found {
				continue
			}
			admissible[pid] = true
			if best > 0 {
				plan.slack[pid] = best
			}
		}
		if opt.Exclude == nil {
			opt.Exclude = map[pathsum.PathID]bool{}
		}
		for _, pid := range sum.ElemPaths() {
			if !admissible[pid] {
				opt.Exclude[pid] = true
			}
		}
		opt.SkipExcluded = true
	}
	return opt, plan, nil
}
