//go:build !race

package ncq

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation counts; the
// allocation-pinning tests skip themselves when it is set.
const raceEnabled = false
