package ncq

// Tests for the unified Request/Result execution API: equivalence with
// the legacy entry points, pushed-down limits, cursor pagination, and
// context cancellation through the member fan-out.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"ncq/internal/query"
)

// pagingCorpus builds a membership large enough that pagination and
// ranking have something to cut: four plain members and one sharded
// member, all with overlapping terms.
func pagingCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	for i := 0; i < 4; i++ {
		db, err := FromDocument(bigBib(30))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(fmt.Sprintf("doc%d", i), db); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.AddSharded("sharded", bigBib(40), 4); err != nil {
		t.Fatal(err)
	}
	return c
}

// expectedTermMeets computes a database's term meets through the
// pre-redesign engine path (per-term full-text search + meetOfSets),
// which the unified Run does not share, so the equivalence assertions
// below compare two independent implementations.
func expectedTermMeets(t *testing.T, db *Database, opt *Options, terms []string) ([]Meet, []NodeID) {
	t.Helper()
	sets := make([][]NodeID, 0, len(terms))
	for _, term := range terms {
		var owners []NodeID
		for _, h := range db.SearchSubstring(term) {
			owners = append(owners, h.Node)
		}
		sets = append(sets, owners)
	}
	meets, unmatched, err := db.meetOfSets(sets, opt)
	if err != nil {
		t.Fatal(err)
	}
	return meets, unmatched
}

// expectedCorpusMeets hand-rolls the corpus answer: the independent
// per-shard meets of every member, tagged and sorted by the documented
// (distance, source, shard, node) order.
func expectedCorpusMeets(t *testing.T, c *Corpus, names []string, opt *Options, terms []string) ([]CorpusMeet, int) {
	t.Helper()
	var out []CorpusMeet
	unmatched := 0
	for _, name := range names {
		dbs, ok := c.Shards(name)
		if !ok {
			t.Fatalf("member %q vanished", name)
		}
		for si, sdb := range dbs {
			shard := 0
			if len(dbs) > 1 {
				shard = si + 1
			}
			meets, un := expectedTermMeets(t, sdb, opt, terms)
			unmatched += len(un)
			for _, m := range meets {
				out = append(out, CorpusMeet{Source: name, Shard: shard, Meet: m})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return lessCorpusMeet(out[i], out[j]) })
	return out, unmatched
}

// TestRunEquivalence pins the acceptance contract of the redesign: the
// legacy entry points delegate to Run, and Run returns exactly the
// answer sets the pre-redesign engine produces (computed independently
// via meetOfSets and a hand-rolled merge).
func TestRunEquivalence(t *testing.T) {
	c := pagingCorpus(t)
	ctx := context.Background()
	terms := []string{"Author1", "199"}

	// Corpus-wide: Run == independently merged per-shard answers, and
	// the legacy wrapper returns the same thing.
	want, _ := expectedCorpusMeets(t, c, c.Names(), ExcludeRoot(), terms)
	res, err := c.Run(ctx, Request{Terms: terms, Options: ExcludeRoot()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Meets) == 0 || !reflect.DeepEqual(res.Meets, want) {
		t.Errorf("corpus Run != independent merge: %d vs %d meets", len(res.Meets), len(want))
	}
	legacy, err := c.MeetOfTerms(ExcludeRoot(), terms...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, want) {
		t.Errorf("MeetOfTerms != independent merge")
	}

	// Named member (sharded): same, restricted to one logical name.
	wantIn, wantUn := expectedCorpusMeets(t, c, []string{"sharded"}, ExcludeRoot(), terms)
	resIn, err := c.Run(ctx, Request{Doc: "sharded", Terms: terms, Options: ExcludeRoot()})
	if err != nil {
		t.Fatal(err)
	}
	if len(resIn.Meets) == 0 || !reflect.DeepEqual(resIn.Meets, wantIn) {
		t.Errorf("sharded Run != independent merge: %d vs %d meets", len(resIn.Meets), len(wantIn))
	}
	if resIn.Unmatched != wantUn {
		t.Errorf("sharded Run unmatched = %d, independent count %d", resIn.Unmatched, wantUn)
	}
	legacyIn, un, err := c.MeetOfTermsIn("sharded", ExcludeRoot(), terms...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacyIn, wantIn) || resIn.Unmatched != un {
		t.Errorf("MeetOfTermsIn != independent merge (unmatched %d vs %d)", resIn.Unmatched, un)
	}

	// Single database: same answer set (MeetOfTerms reports document
	// order, Run reports ranked order).
	db := fig1DB(t)
	dbLegacy, dbUn, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	dbRes, err := db.Run(ctx, Request{Terms: []string{"Bit", "1999"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(dbRes.Meets) != len(dbLegacy) {
		t.Fatalf("database Run returned %d meets, MeetOfTerms %d", len(dbRes.Meets), len(dbLegacy))
	}
	byNode := map[NodeID]Meet{}
	for _, m := range dbRes.Meets {
		byNode[m.Node] = m.Meet
	}
	for _, m := range dbLegacy {
		if !reflect.DeepEqual(byNode[m.Node], m) {
			t.Errorf("database Run missing meet %+v", m)
		}
	}
	if !reflect.DeepEqual(dbRes.UnmatchedNodes, dbUn) {
		t.Errorf("unmatched = %v vs %v", dbRes.UnmatchedNodes, dbUn)
	}

	// Query-language: Corpus.Query / QueryIn == Run.
	const q = `SELECT meet(e1, e2; EXCLUDE /bib)
		FROM //author/cdata AS e1, //year/cdata AS e2
		WHERE e1 CONTAINS 'Author1' AND e2 CONTAINS '1991'`
	legacyAns, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	resQ, err := c.Run(ctx, Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacyAns) == 0 || !reflect.DeepEqual(resQ.Answers, legacyAns) {
		t.Errorf("corpus query Run != Query (%d vs %d answers)", len(resQ.Answers), len(legacyAns))
	}
}

// TestRunLimitPushdown pins that the pushed-down limit returns exactly
// the top-K answers a full rank-then-truncate would, for both modes.
func TestRunLimitPushdown(t *testing.T) {
	c := pagingCorpus(t)
	ctx := context.Background()
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot()}
	full, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Meets) < 10 {
		t.Fatalf("workload too small: %d meets", len(full.Meets))
	}
	if full.Truncated || full.NextCursor != "" {
		t.Errorf("unlimited run reported truncation: %+v", full)
	}
	for _, k := range []int{1, 2, 3, 7, len(full.Meets), len(full.Meets) + 10} {
		lim := req
		lim.Limit = k
		res, err := c.Run(ctx, lim)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Meets
		if k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(res.Meets, want) {
			t.Errorf("limit %d: top-K differs from truncate-after-rank", k)
		}
		if wantTrunc := k < len(full.Meets); res.Truncated != wantTrunc {
			t.Errorf("limit %d: truncated = %t, want %t", k, res.Truncated, wantTrunc)
		}
		if res.Truncated && res.NextCursor == "" {
			t.Errorf("limit %d: truncated page without cursor", k)
		}
	}

	// Query-language rows: the page window runs over the concatenated
	// rows of all answers.
	qreq := Request{Query: "SELECT tag(e) FROM //author AS e"}
	fullQ, err := c.Run(ctx, qreq)
	if err != nil {
		t.Fatal(err)
	}
	var fullRows []query.Row
	for _, a := range fullQ.Answers {
		fullRows = append(fullRows, a.Answer.Rows...)
	}
	for _, k := range []int{1, 5, 33} {
		lim := qreq
		lim.Limit = k
		res, err := c.Run(ctx, lim)
		if err != nil {
			t.Fatal(err)
		}
		var rows []query.Row
		for _, a := range res.Answers {
			rows = append(rows, a.Answer.Rows...)
		}
		want := fullRows
		if k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(rows, want) {
			t.Errorf("query limit %d: rows differ from truncate-after-evaluate", k)
		}
	}
}

// TestRunCursorPagination walks a paginated run to exhaustion and pins
// that the concatenated pages reproduce the full ranked answer set.
func TestRunCursorPagination(t *testing.T) {
	c := pagingCorpus(t)
	ctx := context.Background()
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot(), Limit: 4}
	full, err := c.Run(ctx, Request{Terms: req.Terms, Options: req.Options})
	if err != nil {
		t.Fatal(err)
	}
	var pages int
	var collected []CorpusMeet
	cursor := ""
	for {
		page := req
		page.Cursor = cursor
		res, err := c.Run(ctx, page)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Meets) > req.Limit {
			t.Fatalf("page %d has %d meets (limit %d)", pages, len(res.Meets), req.Limit)
		}
		collected = append(collected, res.Meets...)
		pages++
		if res.NextCursor == "" {
			if res.Truncated {
				t.Error("truncated final page without cursor")
			}
			break
		}
		cursor = res.NextCursor
		if pages > len(full.Meets) {
			t.Fatal("pagination does not terminate")
		}
	}
	if !reflect.DeepEqual(collected, full.Meets) {
		t.Errorf("paginated walk diverged: %d collected vs %d full", len(collected), len(full.Meets))
	}
	if want := (len(full.Meets) + req.Limit - 1) / req.Limit; pages != want {
		t.Errorf("pages = %d, want %d", pages, want)
	}

	// A cursor is bound to its request: different terms reject it.
	foreign := req
	foreign.Terms = []string{"Author2", "199"}
	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	foreign.Cursor = first.NextCursor
	if _, err := c.Run(ctx, foreign); !errors.Is(err, ErrBadCursor) {
		t.Errorf("foreign cursor error = %v, want ErrBadCursor", err)
	}
	garbage := req
	garbage.Cursor = "not-a-cursor!"
	if _, err := c.Run(ctx, garbage); !errors.Is(err, ErrBadCursor) {
		t.Errorf("garbage cursor error = %v, want ErrBadCursor", err)
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	db := fig1DB(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"both modes", Request{Terms: []string{"a"}, Query: "SELECT tag(e) FROM //x AS e"}},
		{"empty", Request{}},
		{"negative limit", Request{Terms: []string{"a"}, Limit: -1}},
		{"options on query", Request{Query: "SELECT tag(e) FROM //x AS e", Options: ExcludeRoot()}},
	}
	for _, tc := range cases {
		if _, err := db.Run(ctx, tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A Database holds one anonymous document; naming one is an
	// unknown-document error, uniform with the corpus surface.
	if _, err := db.Run(ctx, Request{Doc: "x", Terms: []string{"a"}}); !errors.Is(err, ErrUnknownDoc) {
		t.Errorf("Doc on Database = %v, want ErrUnknownDoc", err)
	}
	c := NewCorpus()
	if _, err := c.Run(ctx, Request{Doc: "ghost", Terms: []string{"a"}}); !errors.Is(err, ErrUnknownDoc) {
		t.Errorf("unknown corpus doc = %v, want ErrUnknownDoc", err)
	}
}

func TestRunStream(t *testing.T) {
	c := pagingCorpus(t)
	ctx := context.Background()
	req := Request{Terms: []string{"Author1", "199"}, Options: ExcludeRoot()}
	full, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []CorpusMeet
	if err := c.RunStream(ctx, req, func(m CorpusMeet) bool {
		streamed = append(streamed, m)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, full.Meets) {
		t.Errorf("stream diverged from Run: %d vs %d", len(streamed), len(full.Meets))
	}
	// Early stop: yield false after two meets.
	n := 0
	if err := c.RunStream(ctx, req, func(CorpusMeet) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("early stop yielded %d meets", n)
	}
	// Query-language requests are not streamable.
	if err := c.RunStream(ctx, Request{Query: "SELECT tag(e) FROM //x AS e"}, func(CorpusMeet) bool { return true }); err == nil {
		t.Error("query-language stream accepted")
	}
	// A cancelled context surfaces between yields.
	cctx, cancel := context.WithCancel(ctx)
	err = c.RunStream(cctx, req, func(CorpusMeet) bool { cancel(); return true })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled stream = %v", err)
	}
}

// TestForEachDocCancelMidFlight is the deterministic half of the
// cancellation contract: workers are mid-item when the context dies,
// dispatch stops, the call returns ctx.Err(), and no goroutine leaks
// (forEachDoc drains its pool before returning).
func TestForEachDocCancelMidFlight(t *testing.T) {
	const n, workers = 100, 4
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, n)
	release := make(chan struct{})
	var ran atomic.Int32
	errCh := make(chan error, 1)
	go func() {
		errCh <- forEachDoc(ctx, n, workers, func(i int) error {
			ran.Add(1)
			started <- struct{}{}
			<-release
			return nil
		})
	}()
	for i := 0; i < workers; i++ {
		<-started // all workers are now blocked inside fn
	}
	cancel()
	close(release)
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("forEachDoc = %v, want context.Canceled", err)
	}
	// The dispatcher saw the cancellation; at most one queued item per
	// worker could still have been picked up.
	if got := ran.Load(); got > 2*workers {
		t.Errorf("ran %d items after cancellation (want ≤ %d)", got, 2*workers)
	}
}

// TestCorpusRunCancelMidFanout is the satellite regression: a
// corpus-wide Run over many members is cancelled mid-fan-out, returns
// ctx.Err() well before a full run would complete, and leaks no pool
// goroutines (run with -race).
func TestCorpusRunCancelMidFanout(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 32; i++ {
		db, err := FromDocument(bigBib(200))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Add(fmt.Sprintf("m%d", i), db); err != nil {
			t.Fatal(err)
		}
	}
	c.SetParallelism(2)
	req := Request{Terms: []string{"Author", "199"}, Options: ExcludeRoot()}

	// Baseline: one full uncancelled run (also warms every code path).
	start := time.Now()
	if _, err := c.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(start)

	// A context cancelled before Run starts returns immediately.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := c.Run(pre, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run = %v", err)
	}

	base := runtime.NumGoroutine()
	cancelAfter := baseline / 16
	cancelled := false
	for attempt := 0; attempt < 5 && !cancelled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(cancelAfter, cancel)
		start = time.Now()
		_, err := c.Run(ctx, req)
		elapsed := time.Since(start)
		timer.Stop()
		cancel()
		if err == nil {
			// The run finished before the cancellation landed; try an
			// earlier cancel.
			cancelAfter /= 2
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Run = %v, want context.Canceled", err)
		}
		if elapsed > baseline*2 {
			t.Errorf("cancelled Run took %v (full run takes %v) — not prompt", elapsed, baseline)
		}
		cancelled = true
	}
	if !cancelled {
		t.Fatal("could not cancel a run mid-fan-out in 5 attempts")
	}
	// No pool goroutine may outlive the cancelled call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Errorf("goroutines after cancelled Run: %d (baseline %d) — pool leak", got, base)
	}
	c.SetParallelism(0)
}

// TestMeetOfTermsSelfMeetOrder pins the legacy wrapper's order for the
// one ambiguous case: a node hosting both a roll-up meet and a
// degenerate self-meet. The pre-unified implementation reported the
// roll-up first.
func TestMeetOfTermsSelfMeetOrder(t *testing.T) {
	db, err := OpenString(`<r><a x="Bob Byte"><b>Bob</b><c>Byte</c></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	meets, _, err := db.MeetOfTerms(nil, "Bob", "Byte")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 2 || meets[0].Node != meets[1].Node {
		t.Fatalf("meets = %+v, want two meets at one node", meets)
	}
	if meets[0].Distance != 4 || meets[1].Distance != 0 {
		t.Errorf("order = distances %d,%d; want the roll-up (4) before the self-meet (0)",
			meets[0].Distance, meets[1].Distance)
	}
}

// TestRunElapsed pins that Result carries timing.
func TestRunElapsed(t *testing.T) {
	db := fig1DB(t)
	res, err := db.Run(context.Background(), Request{Terms: []string{"Bit", "1999"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Errorf("Elapsed = %v", res.Elapsed)
	}
}

// TestRequestCanonical pins the cache-key contract: equivalent
// requests collapse onto one encoding, different requests do not.
func TestRequestCanonical(t *testing.T) {
	a := Request{Terms: []string{"x"}, Options: ExcludePattern("//a").ExcludePattern("//b"), Limit: 3}
	b := Request{Terms: []string{"x"}, Options: ExcludePattern("//b").ExcludePattern("//a"), Limit: 3}
	if a.Canonical() != b.Canonical() {
		t.Error("pattern order changed the canonical encoding")
	}
	q1 := Request{Query: "SELECT  tag(e)\n FROM //x AS e"}
	q2 := Request{Query: "SELECT tag(e) FROM //x AS e"}
	if q1.Canonical() != q2.Canonical() {
		t.Error("query whitespace changed the canonical encoding")
	}
	other := Request{Terms: []string{"y"}, Limit: 3}
	if a.Canonical() == other.Canonical() {
		t.Error("different requests share a canonical encoding")
	}
	// Pages of one request differ only in the offset.
	paged := a
	paged.Cursor = encodeCursor(3, paged.fingerprint(), 0)
	if a.Canonical() == paged.Canonical() {
		t.Error("cursor page shares the first page's encoding")
	}
}
