package ncq

import (
	"reflect"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

// Two bibliographies with completely different mark-up for the same
// item — the scenario of Section 4's cross-bibliography application.
const otherMarkup = `<refs>
  <entry>
    <who>Ben Bit</who>
    <what>How to Hack</what>
    <when>1999</when>
  </entry>
  <entry>
    <who>Carol Code</who>
    <what>Sorting Things</what>
    <when>1997</when>
  </entry>
</refs>`

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := NewCorpus()
	db1, err := FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := OpenString(otherMarkup)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add("cwi", db1); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("personal", db2); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusBasics(t *testing.T) {
	c := testCorpus(t)
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "cwi" || names[1] != "personal" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := c.Get("cwi"); !ok {
		t.Error("Get(cwi) failed")
	}
	if _, ok := c.Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
	if err := c.Add("x", nil); err == nil {
		t.Error("nil database accepted")
	}
	// Replacing keeps the position and count, and Put reports it.
	db, _ := c.Get("cwi")
	replaced, err := c.Put("cwi", db)
	if err != nil || !replaced {
		t.Errorf("Put(cwi) = %t, %v; want replaced", replaced, err)
	}
	if c.Len() != 2 {
		t.Errorf("Len after replace = %d", c.Len())
	}
	if replaced, err := c.Put("fresh", db); err != nil || replaced {
		t.Errorf("Put(fresh) = %t, %v; want created", replaced, err)
	}
	if !c.Remove("fresh") {
		t.Error("Remove(fresh) failed")
	}
	if c.Remove("fresh") {
		t.Error("Remove(fresh) succeeded twice")
	}
	if gen := c.Generation(); gen != 5 {
		t.Errorf("Generation = %d, want 5 (2 adds + replace + put + remove)", gen)
	}
}

// TestCorpusFindsItemUnderBothMarkups is the paper's cross-bibliography
// scenario: the same publication is found in both files although one
// marks it up as article/author/year and the other as entry/who/when —
// and the answer's type differs per instance.
func TestCorpusFindsItemUnderBothMarkups(t *testing.T) {
	c := testCorpus(t)
	meets, err := c.MeetOfTerms(ExcludeRoot(), "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	bySource := map[string]string{}
	for _, m := range meets {
		bySource[m.Source] = m.Tag
	}
	if bySource["cwi"] != "article" {
		t.Errorf("cwi concept = %q, want article", bySource["cwi"])
	}
	if bySource["personal"] != "entry" {
		t.Errorf("personal concept = %q, want entry", bySource["personal"])
	}
}

func TestCorpusRanking(t *testing.T) {
	c := testCorpus(t)
	meets, err := c.MeetOfTerms(ExcludeRoot(), "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(meets); i++ {
		if meets[i].Distance < meets[i-1].Distance {
			t.Errorf("results not ranked by distance: %+v", meets)
		}
	}
}

func TestCorpusTermMissingEverywhere(t *testing.T) {
	c := testCorpus(t)
	meets, err := c.MeetOfTerms(nil, "absent", "alsoabsent")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 0 {
		t.Errorf("meets = %+v", meets)
	}
}

func TestExplain(t *testing.T) {
	db := fig1DB(t)
	meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	text, err := db.Explain(meets[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<article>", "lastname/cdata", `"Bit"`, "year/cdata", `"1999"`} {
		if !contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}
	// A meet whose witness is the concept itself.
	meets, _, err = db.MeetOf([]NodeID{3, 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err = db.Explain(meets[0])
	if err != nil {
		t.Fatal(err)
	}
	if !contains(text, "(the concept itself)") {
		t.Errorf("Explain self-witness:\n%s", text)
	}
	// Bogus meet surfaces an error.
	if _, err := db.Explain(Meet{Node: 3, Witnesses: []NodeID{19}}); err == nil {
		t.Error("Explain with foreign witness succeeded")
	}
}

func TestPathBetweenAndContextFacade(t *testing.T) {
	db := fig1DB(t)
	p, err := db.PathBetween(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 || p[0] != 6 || p[4] != 8 {
		t.Errorf("PathBetween = %v", p)
	}
	ctx, err := db.Context(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx) != 3 || ctx[0] != "author" {
		t.Errorf("Context = %v", ctx)
	}
	if _, err := db.PathBetween(0, 8); err == nil {
		t.Error("invalid node accepted")
	}
	if _, err := db.Context(8, 3); err == nil {
		t.Error("non-ancestor accepted")
	}
}

func TestThesaurusFacade(t *testing.T) {
	db := fig1DB(t)
	th := NewThesaurus().Add("robert", "bob")
	hits := db.SearchExpanded(th, "robert")
	if len(hits) != 1 || hits[0].Node != 15 {
		t.Errorf("SearchExpanded = %+v", hits)
	}
	if got := db.SearchExpanded(nil, "Ben"); len(got) != 1 {
		t.Errorf("nil thesaurus = %+v", got)
	}
	// Broadened meet: 'robert' alone finds nothing to meet with; with
	// the thesaurus it reaches Bob Byte's article via 1999.
	meets, _, err := db.MeetOfTermsExpanded(th, ExcludeRoot(), "robert", "1999")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range meets {
		if m.Node == 13 && m.Tag == "article" {
			found = true
		}
	}
	if !found {
		t.Errorf("broadened meet missed the second article: %+v", meets)
	}
	// Nil thesaurus falls back to the plain path.
	plain, _, err := db.MeetOfTermsExpanded(nil, nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Node != 3 {
		t.Errorf("nil-thesaurus meet = %+v", plain)
	}
	if th.Expand("robert")[0] != "bob" {
		t.Errorf("Expand = %v", th.Expand("robert"))
	}
}

func contains(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}

func TestCorpusMutationHook(t *testing.T) {
	c := NewCorpus()
	var got []Mutation
	c.SetMutationHook(func(m Mutation) { got = append(got, m) })
	db := fig1DB(t)
	if err := c.Add("a", db); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AddSharded("b", xmltree.Fig1(), 4); err != nil {
		t.Fatal(err)
	}
	bShards := c.ShardCount("b")
	if bShards < 1 {
		t.Fatalf("ShardCount(b) = %d", bShards)
	}
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	want := []Mutation{
		{Name: "a", Gen: 1},
		{Name: "b", Gen: 2, Shards: bShards},
		{Name: "a", Gen: 3, Delete: true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mutations = %+v, want %+v", got, want)
	}
	if c.Generation() != 3 {
		t.Errorf("Generation = %d", c.Generation())
	}
	// The hook observes the exact generation the corpus reports: no
	// mutation can slip between the bump and the notification.
	c.SetMutationHook(func(m Mutation) {
		if m.Gen != 4 {
			t.Errorf("hook saw gen %d, want 4", m.Gen)
		}
	})
	if err := c.Add("c", db); err != nil {
		t.Fatal(err)
	}
	c.SetMutationHook(nil)
	if err := c.Add("d", db); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusAddShardDBsAndRestoreGeneration(t *testing.T) {
	c := NewCorpus()
	db := fig1DB(t)
	if _, err := c.AddShardDBs("x", nil); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := c.AddShardDBs("x", []*Database{db, nil}); err == nil {
		t.Error("nil shard accepted")
	}
	replaced, err := c.AddShardDBs("x", []*Database{db, db})
	if err != nil || replaced {
		t.Fatalf("AddShardDBs = %v, %v", replaced, err)
	}
	if got := c.ShardCount("x"); got != 2 {
		t.Errorf("ShardCount = %d, want 2", got)
	}
	if _, ok := c.Get("x"); ok {
		t.Error("sharded member visible via Get")
	}
	c.RestoreGeneration(41)
	if c.Generation() != 41 {
		t.Errorf("Generation = %d, want 41", c.Generation())
	}
	// The next mutation continues from the restored point.
	if err := c.Add("y", db); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 42 {
		t.Errorf("Generation after restore+add = %d, want 42", c.Generation())
	}
}
