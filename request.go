package ncq

// This file defines the unified execution API: one Request/Result pair
// understood by every query surface — the library's Database and
// Corpus, the ncqd HTTP server (v1 and v2), and the CLIs. The paper's
// promise is "the power of querying with the simplicity of searching";
// one request shape with context cancellation, pushed-down limits and
// cursor pagination keeps the simplicity as the system scales.

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"hash/fnv"
	"iter"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadCursor is returned (wrapped) by Run when Request.Cursor is not
// a cursor produced by a previous Result, or belongs to a different
// request.
var ErrBadCursor = errors.New("invalid cursor")

// ErrStaleCursor is returned (wrapped) by corpus runs when
// Request.Cursor was minted against an earlier corpus generation: a
// mutation between pages re-ranks the answer set, so resuming the old
// position would silently repeat or skip answers. Re-issue the request
// without a cursor to start a fresh ranking. The ncqd v2 endpoint maps
// it to HTTP 410 Gone. Database cursors never go stale (a loaded
// document is immutable).
var ErrStaleCursor = errors.New("stale cursor")

// Request is one nearest-concept query addressed to any Querier.
// Exactly one of Terms (a raw term meet) or Query (the paper's SQL
// variant) must be set. The zero values of the remaining fields are
// always valid: no document restriction, no options, no limit, first
// page.
type Request struct {
	// Doc restricts a corpus run to the named member (resolved
	// logically: a sharded member fans out over its shards). Empty
	// means the whole corpus. A Database holds a single anonymous
	// document, so Doc must be empty when running against one.
	Doc string `json:"doc,omitempty"`

	// Terms holds one full-text term per input set; the result is the
	// meet of all hits (substring semantics, as in MeetOfTerms).
	Terms []string `json:"terms,omitempty"`

	// Query is a query in the paper's SQL variant, e.g.
	// "SELECT meet(e1, e2) FROM //cdata AS e1, ...".
	Query string `json:"query,omitempty"`

	// Options tunes the meet operator for term requests. It must be
	// nil for query-language requests, which carry their options in
	// the meet(...) clause.
	Options *Options `json:"-"`

	// Limit caps the number of returned meets (term requests) or rows
	// across answers (query requests); 0 means unlimited. The limit is
	// pushed down into execution: the engine materialises and ranks
	// only what the page needs instead of truncating a full answer
	// set afterwards.
	Limit int `json:"limit,omitempty"`

	// Cursor resumes a paginated run where a previous Result's
	// NextCursor left off. Cursors are opaque and bound to the request
	// that produced them: reusing one with different terms, options or
	// limit fails with ErrBadCursor. They also carry the corpus
	// generation they were minted at: presenting one after a corpus
	// mutation fails with ErrStaleCursor instead of silently cutting
	// the next page from a re-ranked answer set.
	Cursor string `json:"cursor,omitempty"`

	// Vague switches a term request into the vague-constraints mode:
	// restrict patterns match approximately within a structural-slack
	// budget and slack blends into the ranking distance (see Vague).
	// It must be nil for query-language requests. The zero spec is
	// equivalent — including cache keys and cursors — to exact mode.
	Vague *Vague `json:"vague,omitempty"`
}

// Result is the answer to a Request, whatever surface executed it.
type Result struct {
	// Meets holds the ranked nearest concepts of a term request
	// (ascending distance; ties by source, shard, document order).
	// Source and Shard are empty for a Database run.
	Meets []CorpusMeet `json:"meets,omitempty"`

	// Answers holds the per-source answers of a query-language
	// request. A run against a named document (or a Database) yields
	// exactly one answer; a corpus-wide run omits sources whose answer
	// has no rows.
	Answers []CorpusAnswer `json:"answers,omitempty"`

	// Unmatched counts the inputs that found no partner.
	Unmatched int `json:"unmatched,omitempty"`

	// UnmatchedNodes lists the unmatched inputs of a Database term
	// run. Corpus runs report only the count: node IDs are local to a
	// member's shard and do not identify nodes on their own.
	UnmatchedNodes []NodeID `json:"unmatched_nodes,omitempty"`

	// Truncated reports that Limit cut the answer set; NextCursor then
	// resumes at the next page.
	Truncated  bool   `json:"truncated,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`

	// Elapsed is the execution wall time.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`

	// RelaxationsBySlack counts, for a vague term request, the candidate
	// answers that used each amount of structural slack (index = slack;
	// index 0 unused). Nil for exact requests. It is observability
	// metadata — the ncqd server feeds its relaxation histogram from it
	// — and deliberately stays off the wire.
	RelaxationsBySlack []int `json:"-"`
}

// Querier is the unified execution interface implemented by *Database
// and *Corpus: one entry point for every request shape, honouring
// context cancellation and deadlines.
//
// Results is the iterator-native surface: the ranked meets of a term
// request as an incremental sequence, in the exact (distance, source,
// shard, node) total order of Run, flowing as soon as every fan-out
// member has produced its first answer. Breaking out of the range ends
// execution early (this is how Limit is pushed down); an execution or
// context error arrives as the sequence's final yield. Query-language
// requests are not streamable (their unit is a per-source answer, not
// a meet) and yield a single error.
//
// Run drains the same sequence into one paginated Result. RunStream is
// a pre-iterator adapter over Results, kept for compatibility:
// returning false from yield stops the stream early.
type Querier interface {
	Run(ctx context.Context, req Request) (*Result, error)
	Results(ctx context.Context, req Request) iter.Seq2[CorpusMeet, error]
	RunStream(ctx context.Context, req Request, yield func(CorpusMeet) bool) error
}

var (
	_ Querier = (*Database)(nil)
	_ Querier = (*Corpus)(nil)
)

// validate checks the request shape shared by all Querier
// implementations.
func (r *Request) validate() error {
	hasQuery, hasTerms := r.Query != "", len(r.Terms) > 0
	if hasQuery && hasTerms {
		return errors.New("ncq: request sets both Terms and Query; choose one")
	}
	if !hasQuery && !hasTerms {
		return errors.New("ncq: empty request: set Terms or Query")
	}
	if hasQuery && r.Options != nil {
		return errors.New("ncq: Options apply to term requests; query-language requests carry options in meet(...)")
	}
	if hasQuery && r.Vague != nil {
		return errors.New("ncq: Vague applies to term requests only")
	}
	if err := r.Vague.validate(); err != nil {
		return err
	}
	if r.Limit < 0 {
		return errors.New("ncq: negative Limit")
	}
	return nil
}

// isQuery reports whether the request runs in query-language mode.
func (r *Request) isQuery() bool { return r.Query != "" }

// canonical renders the options deterministically for cache keys and
// cursor fingerprints. Pattern order is irrelevant to the semantics
// (exclusion and restriction are unions), so patterns are sorted.
func (o *Options) canonical() string {
	if o == nil {
		return "-"
	}
	excl := append([]string(nil), o.excludePatterns...)
	sort.Strings(excl)
	restr := append([]string(nil), o.restrictPatterns...)
	sort.Strings(restr)
	return fmt.Sprintf("xroot=%t x=%q r=%q near=%t w=%d lift=%d",
		o.excludeRoot, excl, restr, o.skipExcluded, o.maxDistance, o.maxLift)
}

// canonicalBase is the canonical encoding of everything but the page
// position — the part a cursor is fingerprinted against.
func (r *Request) canonicalBase() string {
	// An inactive Vague spec contributes nothing: a vague request that
	// relaxes and expands nothing IS the exact request and must share
	// its cache entries and cursor fingerprints.
	return fmt.Sprintf("doc=%q terms=%q query=%q opt=%s lim=%d",
		r.Doc, r.Terms, strings.Join(strings.Fields(r.Query), " "),
		r.Options.canonical(), r.Limit) + r.Vague.canonical()
}

// Canonical returns a deterministic encoding of the request:
// equivalent requests — modulo query whitespace, option-pattern order
// and cursor spelling — map to the same string. The ncqd server keys
// its result cache by (corpus generation, Canonical()), so the v1 and
// v2 endpoints share cache entries for equivalent requests. A cursor
// contributes its resume offset and the generation it was minted at,
// so a stale cursor can never splice into a fresh cursor's cache
// entry.
func (r *Request) Canonical() string {
	off, gen, err := r.page()
	if err != nil {
		// An undecodable cursor cannot execute; keep the key unique.
		return r.canonicalBase() + " cur=" + strconv.Quote(r.Cursor)
	}
	s := r.canonicalBase() + " off=" + strconv.Itoa(off)
	if r.Cursor != "" {
		s += " cgen=" + strconv.FormatUint(gen, 10)
	}
	return s
}

// fingerprintOf hashes a canonical request encoding — the binding that
// ties a cursor to the request that minted it.
func fingerprintOf(base string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(base))
	return h.Sum32()
}

// fingerprint binds cursors to the request that produced them.
func (r *Request) fingerprint() uint32 {
	return fingerprintOf(r.canonicalBase())
}

// encodeCursor renders a resume position as an opaque cursor, stamped
// with the corpus generation it was computed against (0 for Database
// runs, which cannot mutate).
func encodeCursor(offset int, fp uint32, gen uint64) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("v2 %d %08x %d", offset, fp, gen)))
}

// decodeCursor reverses encodeCursor, failing with ErrBadCursor on
// garbage or on a cursor whose fingerprint does not match fp.
func decodeCursor(cursor string, fp uint32) (offset int, gen uint64, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(cursor)
	if err != nil {
		return 0, 0, fmt.Errorf("ncq: %w: %v", ErrBadCursor, err)
	}
	var got uint32
	if _, err := fmt.Sscanf(string(raw), "v2 %d %x %d", &offset, &got, &gen); err != nil || offset < 0 {
		return 0, 0, fmt.Errorf("ncq: %w", ErrBadCursor)
	}
	if got != fp {
		return 0, 0, fmt.Errorf("ncq: %w: cursor belongs to a different request", ErrBadCursor)
	}
	return offset, gen, nil
}

// page decodes the request's cursor into a result offset plus the
// corpus generation the cursor was minted at (both 0 when no cursor is
// set), failing with ErrBadCursor on garbage or on a cursor minted for
// a different request. Staleness — a minted generation that no longer
// matches the corpus — is the executor's check: only it knows the
// current generation.
func (r *Request) page() (offset int, gen uint64, err error) {
	if r.Cursor == "" {
		return 0, 0, nil
	}
	return decodeCursor(r.Cursor, r.fingerprint())
}

// MintCursor renders a resume position as an opaque cursor bound to
// base — any canonical encoding of the request minus its page position
// — and stamped with gen, the (possibly composite) generation of the
// state it was computed against. It is the pagination primitive of
// out-of-process executors: internal/cluster's coordinator mints its
// page cursors with it, stamping them with the hash of its worker
// generation vector, so distributed cursors carry the same binding and
// staleness semantics as in-process ones.
func MintCursor(offset int, base string, gen uint64) string {
	return encodeCursor(offset, fingerprintOf(base), gen)
}

// ResolveCursor decodes a cursor minted by MintCursor against the same
// base, returning the resume offset and the stamped generation (both 0
// for an empty cursor). It fails with ErrBadCursor (wrapped) on
// garbage or on a cursor minted against a different base; whether the
// returned generation is stale is the caller's check — only the caller
// knows the current state.
func ResolveCursor(cursor, base string) (offset int, gen uint64, err error) {
	if cursor == "" {
		return 0, 0, nil
	}
	return decodeCursor(cursor, fingerprintOf(base))
}
