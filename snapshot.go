package ncq

import (
	"fmt"
	"io"

	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/query"
)

// SaveSnapshot persists the loaded database in a compact binary form
// that OpenSnapshot reloads without re-parsing or re-shredding the XML.
// The full-text index is rebuilt on load (it is derived data).
func (db *Database) SaveSnapshot(w io.Writer) error {
	if err := db.store.WriteSnapshot(w); err != nil {
		return fmt.Errorf("ncq: %w", err)
	}
	return nil
}

// SaveSnapshotShard is SaveSnapshot with per-shard framing: the
// snapshot records that this database is shard `shard` of a
// `shards`-way split of one logical document. OpenSnapshotShard
// returns the framing, which is how a durable data directory knows how
// to reassemble a sharded member from its .snap files.
func (db *Database) SaveSnapshotShard(w io.Writer, shard, shards int) error {
	if err := db.store.WriteSnapshotShard(w, shard, shards); err != nil {
		return fmt.Errorf("ncq: %w", err)
	}
	return nil
}

// OpenSnapshot loads a database from a snapshot written by
// SaveSnapshot. The result answers every query identically to the
// database that was saved.
func OpenSnapshot(r io.Reader) (*Database, error) {
	db, _, _, err := OpenSnapshotShard(r)
	return db, err
}

// OpenSnapshotShard loads a database from a snapshot and returns its
// shard framing alongside (0 of 1 for a standalone snapshot).
func OpenSnapshotShard(r io.Reader) (db *Database, shard, shards int, err error) {
	store, shard, shards, err := monetx.ReadSnapshotShard(r)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("ncq: %w", err)
	}
	doc, err := store.ReassembleDocument()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("ncq: %w", err)
	}
	idx := fulltext.New(store)
	return &Database{
		doc:    doc,
		store:  store,
		index:  idx,
		engine: query.NewEngine(store, idx),
	}, shard, shards, nil
}
