package ncq

import (
	"fmt"
	"io"

	"ncq/internal/fulltext"
	"ncq/internal/monetx"
	"ncq/internal/query"
)

// SaveSnapshot persists the loaded database in a compact binary form
// that OpenSnapshot reloads without re-parsing or re-shredding the XML.
// The full-text index is rebuilt on load (it is derived data).
func (db *Database) SaveSnapshot(w io.Writer) error {
	if err := db.store.WriteSnapshot(w); err != nil {
		return fmt.Errorf("ncq: %w", err)
	}
	return nil
}

// OpenSnapshot loads a database from a snapshot written by
// SaveSnapshot. The result answers every query identically to the
// database that was saved.
func OpenSnapshot(r io.Reader) (*Database, error) {
	store, err := monetx.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	doc, err := store.ReassembleDocument()
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	idx := fulltext.New(store)
	return &Database{
		doc:    doc,
		store:  store,
		index:  idx,
		engine: query.NewEngine(store, idx),
	}, nil
}
