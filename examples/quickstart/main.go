// Quickstart: the paper's running example end to end.
//
// The document below is Figure 1 of the paper: a small bibliography
// whose mark-up the user supposedly does not know. We ask what connects
// 'Bit' and '1999' — first with the regular-path-expression baseline
// (which over-answers), then with the meet operator (which answers
// "an article").
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ncq"
)

const bibliography = `<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>`

func main() {
	db, err := ncq.OpenString(bibliography)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("loaded %d nodes across %d paths\n\n", st.Nodes, st.Paths)

	// The baseline of the paper's introduction: every node whose
	// offspring contains both strings. The answer drowns the article
	// in its implied ancestors.
	baseline, err := db.Query(`
		SELECT tag(e)
		FROM //* AS e
		WHERE e CONTAINS 'Bit' AND e CONTAINS '1999'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("regular path expressions (the baseline):")
	fmt.Println(baseline.XML())

	// The meet operator: the nearest concept of the two strings.
	answer, err := db.Query(`
		SELECT meet(e1, e2)
		FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearest concept query (the meet operator):")
	fmt.Println(answer.XML())

	// The same through the Go API, with the matched subtree — the
	// paper's "starting point for displaying and browsing".
	meets, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range meets {
		xml, err := db.Subtree(m.Node)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nnearest concept <%s> at distance %d:\n  %s\n", m.Tag, m.Distance, xml)
	}
}
