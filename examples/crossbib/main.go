// Crossbib: the cross-bibliography application of Section 4.
//
// "We may want to know whether a certain bibliographical item that we
// found in one bibliography also lives in another bibliography;
// however, we have no idea how the relevant information is marked up.
// So a good approach is to combine the meet operator with fulltext
// search … and use the results as a starting point for displaying and
// browsing."
//
// Three files mark the same publication up in three different ways; one
// nearest concept query finds it in all of them, and the result type
// differs per file — exactly the paper's point that the type depends on
// the database instance.
//
// Run with: go run ./examples/crossbib
package main

import (
	"fmt"
	"log"

	"ncq"
)

var sources = map[string]string{
	"cwi.xml": `<bibliography><institute>
		<article key="BB99">
			<author><firstname>Ben</firstname><lastname>Bit</lastname></author>
			<title>How to Hack</title><year>1999</year>
		</article>
	</institute></bibliography>`,

	"personal.xml": `<refs>
		<entry><who>Ben Bit</who><what>How to Hack</what><when>1999</when></entry>
		<entry><who>Carol Code</who><what>Sorting Things</what><when>1997</when></entry>
	</refs>`,

	"legacy.xml": `<pubs>
		<pub y="1999" by="Bit, Ben">How to Hack</pub>
		<pub y="1998" by="Доу, J.">Unrelated</pub>
	</pubs>`,
}

func main() {
	corpus := ncq.NewCorpus()
	for _, name := range []string{"cwi.xml", "personal.xml", "legacy.xml"} {
		db, err := ncq.OpenString(sources[name])
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := corpus.Add(name, db); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println(`searching all bibliographies for the item described by "Bit" and "1999":`)
	meets, err := corpus.MeetOfTerms(ncq.ExcludeRoot(), "Bit", "1999")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range meets {
		db, _ := corpus.Get(m.Source)
		xml, err := db.Subtree(m.Node)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-14s concept <%s> at distance %d:\n  %s\n", m.Source, m.Tag, m.Distance, xml)
		explained, err := db.Explain(m.Meet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s", indent(explained))
	}
	fmt.Println("\nThe same item surfaces as <article>, <entry> and <pub> — the result")
	fmt.Println("type is not part of the query, it comes from each database instance.")
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "  "
		}
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
