// Multimedia: the paper's Figure 6 experiment in miniature.
//
// The original measured a 200 MB file of multimedia item descriptions
// produced by CWI's feature detectors; the full-text search dominated
// at ~1207 ms while the meet took ~2 ms and grew linearly with the
// distance between the objects. This example generates a synthetic
// descriptions document with marker pairs planted at known distances
// and shows the same two series.
//
// Run with: go run ./examples/multimedia
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ncq"
	"ncq/internal/datagen"
)

func main() {
	cfg := datagen.DefaultMultimediaConfig()
	cfg.Items = 800 // keep the example snappy
	var xml strings.Builder
	if err := datagen.Multimedia(cfg).WriteXML(&xml, false); err != nil {
		log.Fatal(err)
	}
	db, err := ncq.OpenString(xml.String())
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("multimedia document: %d nodes, %d index terms\n\n", st.Nodes, st.Terms)

	// The full-text baseline (averaged): what the user pays regardless.
	const ftIters = 200
	start := time.Now()
	var hits int
	for i := 0; i < ftIters; i++ {
		hits = len(db.Search("landscape"))
	}
	ftUS := float64(time.Since(start).Microseconds()) / ftIters
	fmt.Printf("full-text search ('landscape', %d hits): %.1f us\n\n", hits, ftUS)

	fmt.Printf("%-10s %-14s %-16s %s\n", "distance", "meet_ns", "fulltext+meet", "concept found")
	for d := 0; d <= 20; d += 2 {
		termA, termB := datagen.ProbeTerms(d)
		a := db.Search(termA)
		b := db.Search(termB)
		if len(a) != 1 || len(b) != 1 {
			log.Fatalf("probe %d: unexpected hits %d/%d", d, len(a), len(b))
		}
		const iters = 5000
		start := time.Now()
		var m ncq.Meet
		for i := 0; i < iters; i++ {
			m, err = db.Meet2(a[0].Node, b[0].Node)
			if err != nil {
				log.Fatal(err)
			}
		}
		meetNS := float64(time.Since(start).Nanoseconds()) / iters
		fmt.Printf("%-10d %-14.0f %-16.1f <%s> (distance %d)\n",
			d, meetNS, ftUS+meetNS/1e3, m.Tag, m.Distance)
	}
	fmt.Println("\nThe meet costs nanoseconds next to the microsecond full-text search")
	fmt.Println("and grows linearly with distance — Figure 6's two claims.")
}
