// Bibliography: the paper's DBLP case study (Section 5, Figure 7).
//
// "We now want to list all publications in the ICDE proceedings of a
// certain year. To achieve this, we do a full-text search for the
// strings 'ICDE' and the year and calculate the meets of the results
// … with the document root excluded from the set of possible results."
//
// The program generates a synthetic DBLP-style bibliography (ICDE
// skipped 1985, like the real conference), runs the query for a single
// year and then sweeps the interval 1999 back to 1990, printing the
// growth of the answer set.
//
// Run with: go run ./examples/bibliography
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ncq"
	"ncq/internal/datagen"
)

func main() {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = 20 // keep the example snappy
	var xml strings.Builder
	if err := datagen.DBLP(cfg).WriteXML(&xml, false); err != nil {
		log.Fatal(err)
	}
	db, err := ncq.OpenString(xml.String())
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("bibliography: %d nodes, %d paths, %d associations\n\n",
		st.Nodes, st.Paths, st.Associations)

	// One year, with a peek at the first results.
	meets, _, err := db.MeetOfTerms(ncq.ExcludeRoot(), "ICDE", "1999")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ICDE 1999: %d publications found\n", len(meets))
	for _, m := range meets[:min(3, len(meets))] {
		xmlStr, err := db.Subtree(m.Node)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", truncate(xmlStr, 110))
	}

	// The Figure 7 sweep: widen the interval year by year.
	fmt.Printf("\n%-12s %-10s %-10s %s\n", "interval", "results", "meet_ms", "note")
	for low := 1999; low >= 1990; low-- {
		terms := []string{"ICDE"}
		for y := low; y <= 1999; y++ {
			terms = append(terms, fmt.Sprintf("%d", y))
		}
		start := time.Now()
		meets, _, err := db.MeetOfTerms(ncq.ExcludeRoot(), terms...)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if low == 1985 || low == 1990 {
			note = "" // annotated below
		}
		if low == 1990 {
			note = "(two false positives from page-number matches)"
		}
		fmt.Printf("%d-1999    %-10d %-10.2f %s\n",
			low, len(meets), float64(time.Since(start).Microseconds())/1000, note)
	}
	fmt.Println("\nNote: there was no ICDE in 1985, so widening 1986->1985 adds nothing —")
	fmt.Println("the small step the paper points out in Figure 7.")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
