// Keywordsearch: keyword search as a special case of the meet.
//
// Section 6 of the paper observes that "by restricting the result
// types, the operator can be used to implement keyword search as a
// special case". This example restricts the result type to
// //inproceedings on a bibliography: the meet of the keyword hits then
// climbs to the enclosing record, which is exactly keyword search over
// publications — without the engine knowing anything about records.
//
// Run with: go run ./examples/keywordsearch
package main

import (
	"fmt"
	"log"
	"strings"

	"ncq"
	"ncq/internal/datagen"
)

func main() {
	cfg := datagen.DefaultDBLPConfig()
	cfg.PubsPerVenueYear = 15
	var xml strings.Builder
	if err := datagen.DBLP(cfg).WriteXML(&xml, false); err != nil {
		log.Fatal(err)
	}
	db, err := ncq.OpenString(xml.String())
	if err != nil {
		log.Fatal(err)
	}

	keywords := []string{"Schmidt", "1999"}
	fmt.Printf("keyword search for %v over %d nodes, restricted to //inproceedings\n\n",
		keywords, db.Stats().Nodes)

	meets, _, err := db.MeetOfTerms(ncq.Restrict("//inproceedings"), keywords...)
	if err != nil {
		log.Fatal(err)
	}

	// The meet reports a record as soon as two hits fall into it; for
	// classic AND-semantics keyword search, keep the records whose
	// witnesses cover every keyword.
	covered := 0
	for _, m := range meets {
		if coversAll(db, m, keywords) {
			covered++
			title := findChildValue(db, m.Node, "title")
			year := findChildValue(db, m.Node, "year")
			authors := findChildValue(db, m.Node, "author")
			fmt.Printf("  [%d] %s (%s) — %s\n", covered, title, year, authors)
			if covered >= 10 {
				fmt.Println("  …")
				break
			}
		}
	}
	fmt.Printf("\n%d records matched at least two keywords, %d matched all of them\n",
		len(meets), countCovering(db, meets, keywords))
}

// coversAll reports whether the meet's witnesses include a hit for
// every keyword.
func coversAll(db *ncq.Database, m ncq.Meet, keywords []string) bool {
	for _, kw := range keywords {
		found := false
		for _, w := range m.Witnesses {
			if strings.Contains(db.Value(w), kw) {
				found = true
				break
			}
			// Attribute hits bind the element; check its attributes too.
			if v, ok := db.Attr(w, "key"); ok && strings.Contains(v, kw) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func countCovering(db *ncq.Database, meets []ncq.Meet, keywords []string) int {
	n := 0
	for _, m := range meets {
		if coversAll(db, m, keywords) {
			n++
		}
	}
	return n
}

// findChildValue returns the text of the first child with the given
// label (joining multiple authors with commas).
func findChildValue(db *ncq.Database, rec ncq.NodeID, label string) string {
	var vals []string
	for _, c := range db.Children(rec) {
		if db.Tag(c) == label {
			vals = append(vals, db.Value(c))
		}
	}
	if len(vals) == 0 {
		return "?"
	}
	return strings.Join(vals, ", ")
}
