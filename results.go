package ncq

// The iterator-native execution core. Every term request — Run,
// RunStream, the NDJSON endpoint, the CLIs — executes through one
// incremental pipeline:
//
//   1. termMeetsStream: each member (a database, or one shard of a
//      sharded member) computes its meet and heapifies the answers by
//      the local (distance, node) rank — O(n), against the O(n log n)
//      of a full sort — so its locally best meet is ready the moment
//      the roll-up finishes and the rest rank lazily, one heap pop per
//      pull.
//   2. merger: a k-way heap merge over the per-member ranked streams.
//      Globally ordered meets flow as soon as every member has
//      produced its head, so the first answer reaches the caller
//      bounded by the slowest member's first result, not by its full
//      answer set and never by a global sort.
//
// The public entry point is Results (range-over-func); Run drains the
// same sequence and attaches the page metadata, and a pushed-down
// Limit is nothing more than the consumer stopping early.

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"ncq/internal/core"
	"ncq/internal/fulltext"
)

// errStreamQuery rejects query-language requests on the streaming
// surface: their unit is a per-source answer, not a meet.
var errStreamQuery = errors.New("ncq: streaming supports term requests only; use Run for query-language requests")

// StreamStats carries the stream-level counters of a Results drain.
// The fields are populated once execution has fanned out — before the
// first yield — so a consumer may read them between yields (the NDJSON
// endpoint writes its trailer from them after the last meet).
type StreamStats struct {
	// Unmatched counts the inputs that found no partner, summed over
	// the members the request fanned out to.
	Unmatched int

	// UnmatchedNodes lists the unmatched inputs of a Database stream.
	// Corpus streams report only the count (node IDs are shard-local).
	UnmatchedNodes []NodeID

	// Total counts the full candidate answer set, before the cursor
	// offset and Limit cut it.
	Total int

	// Generation is the corpus generation the request's membership
	// snapshot was taken at (0 for a Database, which never mutates).
	// Worker nodes stamp their stream headers with it so a distributed
	// coordinator can detect cross-node skew between pages.
	Generation uint64

	// Truncated reports that Limit cuts the stream short; NextCursor
	// then resumes at the next page.
	Truncated  bool
	NextCursor string

	// RelaxationsBySlack counts, for a vague request, the answers that
	// used each amount of structural slack: index = slack, so index 0
	// is never used and len-1 = the request's max_slack. Nil for exact
	// requests. The counts cover the full candidate set (like Total),
	// not just the drained page.
	RelaxationsBySlack []int
}

// rankedMeet pairs a meet with its emission index in the member's
// document-order result, the final tie-break that makes the lazy heap
// order reproduce a stable (distance, node) sort exactly.
type rankedMeet struct {
	m   Meet
	seq int32
}

func lessRanked(a, b rankedMeet) bool {
	if a.m.Distance != b.m.Distance {
		return a.m.Distance < b.m.Distance
	}
	if a.m.Node != b.m.Node {
		return a.m.Node < b.m.Node
	}
	return a.seq < b.seq
}

// memberStream is one member's ranked answer stream, the fan-out unit
// the k-way merge runs over. Two implementations exist: localStream
// (an in-process member whose meets live in a lazily-ranked heap) and
// sourceStream (an adapter over an external MeetSource — how
// internal/cluster's coordinator merges remote workers' NDJSON
// streams). next returns the member's next meet in its local rank
// order plus a monotone per-member sequence number, the stable
// tie-break on full rank ties (which, with disjoint member coverage,
// can only occur within one stream); ok=false ends the stream and a
// non-nil error aborts the whole merge.
type memberStream interface {
	next() (m CorpusMeet, seq int32, ok bool, err error)
}

// localStream is the in-process memberStream: the meets live in a
// binary min-heap, so the first pull costs O(n) heapify and every
// later one O(log n) — a member drained only partially (an early
// Limit, an abandoned stream) never pays for ranking its tail.
type localStream struct {
	source    string // logical member name; empty for a Database run
	shard     int    // 1-based shard; 0 for plain members
	heap      []rankedMeet
	unmatched []NodeID

	// relaxBySlack counts the member's answers per structural slack
	// used (index = slack); nil for exact requests.
	relaxBySlack []int
}

// siftDown restores the min-heap property of h at index i under less;
// heapify establishes it over the whole slice in O(n). Both member
// streams and the k-way merge run on these.
func siftDown[T any](h []T, i int, less func(a, b T) bool) {
	n := len(h)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && less(h[r], h[child]) {
			child = r
		}
		if !less(h[child], h[i]) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

func heapify[T any](h []T, less func(a, b T) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
}

// newLocalStream heapifies meets (in document order, as the roll-up
// emits them) under the member-local rank.
func newLocalStream(meets []Meet, unmatched []NodeID) *localStream {
	s := &localStream{unmatched: unmatched, heap: make([]rankedMeet, len(meets))}
	for i, m := range meets {
		s.heap[i] = rankedMeet{m: m, seq: int32(i)}
	}
	heapify(s.heap, lessRanked)
	return s
}

// pop removes and returns the member's current best meet.
func (s *localStream) pop() (rankedMeet, bool) {
	if len(s.heap) == 0 {
		return rankedMeet{}, false
	}
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[last] = rankedMeet{} // release the Witnesses slice
	s.heap = s.heap[:last]
	if last > 0 {
		siftDown(s.heap, 0, lessRanked)
	}
	return top, true
}

func (s *localStream) pending() int { return len(s.heap) }

// next implements memberStream: pop the heap's best meet and wrap it
// with the member's identity.
func (s *localStream) next() (CorpusMeet, int32, bool, error) {
	rm, ok := s.pop()
	if !ok {
		return CorpusMeet{}, 0, false, nil
	}
	return s.wrap(rm.m), rm.seq, true, nil
}

// termMeetsStream is termMeets' incremental mode: one full-text search
// per term, the multi-set meet, and the member's answers delivered as
// a lazily-ranked stream instead of a sorted slice. The unmatched set
// and the total are known as soon as it returns; the ranking cost is
// paid per pull.
//
// A non-nil vg runs the member in vague mode: restrict patterns are
// compiled approximately (compileVague) and structural slack blends
// into each answer's distance before the heap is built, so the blended
// score is the distance every later layer orders by. When vg.Expand is
// set, terms route through th (the corpus thesaurus; nil degrades to a
// plain token search) instead of the exact substring search.
func (db *Database) termMeetsStream(ctx context.Context, terms []string, opt *Options, vg *Vague, th *fulltext.Thesaurus) (*localStream, error) {
	var copt *core.Options
	var plan *vaguePlan
	var err error
	if vg != nil {
		copt, plan, err = opt.compileVague(db, vg)
	} else {
		copt, err = opt.compile(db)
	}
	if err != nil {
		return nil, err
	}
	sets := make([][]NodeID, 0, len(terms))
	for _, t := range terms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var hits []fulltext.Hit
		if vg != nil && vg.Expand {
			hits = db.index.SearchExpanded(th, t)
		} else {
			hits = db.index.SearchSubstring(t)
		}
		sets = append(sets, fulltext.Owners(hits))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The context threads into the roll-up itself (checked per
	// contracted level), so a deadline interrupts one huge member
	// mid-meet, not just between members.
	results, un, err := core.MeetMultiContext(ctx, db.store, sets, copt)
	if err != nil {
		return nil, fmt.Errorf("ncq: %w", err)
	}
	var relax []int
	if plan != nil {
		// Blend before the rank heap exists, so the blended score IS the
		// order the heap, the k-way merge and the coordinator all see.
		plan.blend(results)
		relax = plan.relaxBySlack
	}
	s := newLocalStream(db.wrapResults(results), un)
	s.relaxBySlack = relax
	return s, nil
}

// testStreamPull, when set, is invoked every time the merge pulls the
// next meet from a member's local stream to replace a consumed head;
// remaining is how many meets the member still holds before the pull.
// Tests use it to slow one member's drain and observe that globally
// ranked meets flow while that member's stream is still mid-flight.
var testStreamPull func(source string, shard, remaining int)

// head is one entry of the k-way merge: a member's current best meet.
type head struct {
	m      CorpusMeet
	seq    int32
	stream memberStream
}

// lessHead orders merge heads by the global lessCorpusMeet rank, with
// the member-local emission index as the final tie-break — the exact
// total order lessCorpusMeet + stable sort used to produce. Full
// lessCorpusMeet ties can only occur within one member (each member
// owns a distinct (source, shard)), where seq decides.
func lessHead(a, b head) bool {
	if lessCorpusMeet(a.m, b.m) {
		return true
	}
	if lessCorpusMeet(b.m, a.m) {
		return false
	}
	return a.seq < b.seq
}

// merger merges the per-member ranked streams into the global rank: a
// heap of member heads, refilled from the owning member as heads are
// consumed. Construction needs every member's head — the global
// minimum cannot be known sooner — which is exactly the "slowest
// member's first result" latency bound.
type merger struct {
	heads []head
}

func newMerger(streams []memberStream) (*merger, error) {
	g := &merger{heads: make([]head, 0, len(streams))}
	for _, s := range streams {
		m, seq, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		if ok {
			g.heads = append(g.heads, head{m: m, seq: seq, stream: s})
		}
	}
	heapify(g.heads, lessHead)
	return g, nil
}

func (s *localStream) wrap(m Meet) CorpusMeet {
	return CorpusMeet{Source: s.source, Shard: s.shard, Meet: m}
}

// next yields the globally next-ranked meet and refills the consumed
// head from its member's stream. A member failing mid-refill — only
// possible for remote sources — aborts the merge with its error.
func (g *merger) next() (CorpusMeet, bool, error) {
	if len(g.heads) == 0 {
		return CorpusMeet{}, false, nil
	}
	out := g.heads[0].m
	s := g.heads[0].stream
	if hook := testStreamPull; hook != nil {
		if ls, ok := s.(*localStream); ok {
			hook(ls.source, ls.shard, ls.pending())
		}
	}
	m, seq, ok, err := s.next()
	if err != nil {
		return CorpusMeet{}, false, err
	}
	if ok {
		g.heads[0] = head{m: m, seq: seq, stream: s}
	} else {
		last := len(g.heads) - 1
		g.heads[0] = g.heads[last]
		g.heads = g.heads[:last]
	}
	if len(g.heads) > 0 {
		siftDown(g.heads, 0, lessHead)
	}
	return out, true, nil
}

// fillStats publishes the counters known at fan-out completion and
// mints the resume cursor of a truncated stream.
func fillStats(stats *StreamStats, req *Request, offset int, gen uint64, total, unmatched int, unmatchedNodes []NodeID) {
	stats.Total = total
	stats.Unmatched = unmatched
	stats.UnmatchedNodes = unmatchedNodes
	stats.Generation = gen
	if req.Limit > 0 && total > offset+req.Limit {
		stats.Truncated = true
		stats.NextCursor = encodeCursor(offset+req.Limit, req.fingerprint(), gen)
	}
}

// drain runs the page window over the merged stream: skip offset
// meets, yield up to limit (0 = all), checking ctx between yields so a
// cancelled consumer stops mid-stream with the context's error. A
// member failing mid-merge surfaces as the final yield.
func drain(ctx context.Context, g *merger, offset, limit int, yield func(CorpusMeet, error) bool) {
	for i := 0; i < offset; i++ {
		_, ok, err := g.next()
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		if !ok {
			return
		}
	}
	for n := 0; limit <= 0 || n < limit; n++ {
		if err := ctx.Err(); err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		m, ok, err := g.next()
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		if !ok {
			return
		}
		if !yield(m, nil) {
			return
		}
	}
}

// MeetSource is one independently ranked stream of corpus meets fed to
// MergeMeets: Next returns the source's next meet in its own rank
// order — the global (distance, source, shard, node) order restricted
// to the members the source covers. ok=false ends the source; a
// non-nil error aborts the merged sequence with that error.
type MeetSource interface {
	Next() (m CorpusMeet, ok bool, err error)
}

// sourceStream adapts an exported MeetSource to the internal merge:
// the arrival index becomes the seq tie-break, preserving the source's
// own order on full rank ties.
type sourceStream struct {
	src MeetSource
	seq int32
}

func (s *sourceStream) next() (CorpusMeet, int32, bool, error) {
	m, ok, err := s.src.Next()
	if err != nil || !ok {
		return CorpusMeet{}, 0, false, err
	}
	s.seq++
	return m, s.seq - 1, true, nil
}

// MergeMeets k-way merges independently ranked meet streams into one
// sequence in the exact global (distance, source, shard, node) total
// order — the distribution primitive behind internal/cluster's
// coordinator: every worker node streams its members' answers in its
// own globally ranked order, and the merged sequence equals the
// single-node ranking as long as the sources cover disjoint (source,
// shard) sets. offset meets are skipped and limit > 0 ends the
// sequence early, exactly like one Run page.
//
// The first yield requires every source's head — the global minimum
// cannot be known sooner — so time to first result is bounded by the
// slowest source's first answer, never by any source's full drain. A
// source error, or ctx expiring between yields, surfaces as the
// sequence's final yield. The sequence is single-use.
func MergeMeets(ctx context.Context, sources []MeetSource, offset, limit int) iter.Seq2[CorpusMeet, error] {
	return func(yield func(CorpusMeet, error) bool) {
		streams := make([]memberStream, len(sources))
		for i, src := range sources {
			streams[i] = &sourceStream{src: src}
		}
		g, err := newMerger(streams)
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		drain(ctx, g, offset, limit, yield)
	}
}

// Results implements Querier: the ranked meets of a term request as an
// incremental sequence. See ResultsWithStats for the full contract.
func (db *Database) Results(ctx context.Context, req Request) iter.Seq2[CorpusMeet, error] {
	seq, _ := db.ResultsWithStats(ctx, req)
	return seq
}

// ResultsWithStats is Results plus the stream-level counters: the
// returned stats are zero until the sequence's execution has fanned
// out and complete before its first yield. The sequence is single-use:
// ranging over it a second time re-executes the request. Source and
// Shard are empty in every yielded meet (a Database is one anonymous
// document); Request.Cursor skips into the ranked stream and
// Request.Limit ends it early, exactly like one Run page.
func (db *Database) ResultsWithStats(ctx context.Context, req Request) (iter.Seq2[CorpusMeet, error], *StreamStats) {
	stats := &StreamStats{}
	seq := func(yield func(CorpusMeet, error) bool) {
		if req.isQuery() {
			yield(CorpusMeet{}, errStreamQuery)
			return
		}
		if err := req.validate(); err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		if req.Doc != "" {
			yield(CorpusMeet{}, fmt.Errorf("ncq: %w %q: a Database holds a single document; clear Request.Doc or run against a Corpus", ErrUnknownDoc, req.Doc))
			return
		}
		// A Database never mutates, so a cursor can never go stale; the
		// generation it carries is not checked.
		offset, _, err := req.page()
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		// A Database has no corpus thesaurus; Expand degrades to a plain
		// token search on the literal terms.
		s, err := db.termMeetsStream(ctx, req.Terms, req.Options, req.Vague, nil)
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		fillStats(stats, &req, offset, 0, s.pending(), len(s.unmatched), s.unmatched)
		stats.RelaxationsBySlack = s.relaxBySlack
		g, err := newMerger([]memberStream{s})
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		drain(ctx, g, offset, req.Limit, yield)
	}
	return seq, stats
}

// Results implements Querier: the globally ranked meets of a corpus
// term request as an incremental sequence. See ResultsWithStats for
// the full contract.
func (c *Corpus) Results(ctx context.Context, req Request) iter.Seq2[CorpusMeet, error] {
	seq, _ := c.ResultsWithStats(ctx, req)
	return seq
}

// ResultsWithStats is Results plus the stream-level counters. The
// members of the request — the whole membership, or the shards of the
// named document — compute and locally rank their answers in parallel
// (bounded by SetParallelism); the yielded sequence is their k-way
// merge in the exact (distance, source, shard, node) total order of
// Run, flowing as soon as every member has produced its head. The
// returned stats are zero until that fan-out completes and are
// published before the first yield. The sequence is single-use:
// ranging over it a second time re-executes the request.
//
// Request.Cursor skips into the ranked stream — failing with
// ErrStaleCursor if the corpus has mutated since the cursor was minted
// — and Request.Limit ends the sequence early, exactly like one Run
// page. A context error surfaces as the sequence's final yield.
func (c *Corpus) ResultsWithStats(ctx context.Context, req Request) (iter.Seq2[CorpusMeet, error], *StreamStats) {
	stats := &StreamStats{}
	seq := func(yield func(CorpusMeet, error) bool) {
		if req.isQuery() {
			yield(CorpusMeet{}, errStreamQuery)
			return
		}
		if err := req.validate(); err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		offset, curGen, err := req.page()
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		members, workers, gen, err := c.resolve(req.Doc)
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		if req.Cursor != "" && curGen != gen {
			yield(CorpusMeet{}, fmt.Errorf("ncq: %w: the corpus changed since this cursor was minted", ErrStaleCursor))
			return
		}
		th := c.expander()
		streams := make([]*localStream, len(members))
		err = forEachDoc(ctx, len(members), workers, func(i int) error {
			s, err := members[i].db.termMeetsStream(ctx, req.Terms, req.Options, req.Vague, th)
			if err != nil {
				return fmt.Errorf("ncq: corpus %q: %w", members[i].name, err)
			}
			s.source, s.shard = members[i].name, members[i].shard
			streams[i] = s
			return nil
		})
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		total, unmatched := 0, 0
		merged := make([]memberStream, len(streams))
		var relax []int
		if req.Vague != nil {
			relax = make([]int, req.Vague.MaxSlack+1)
		}
		for i, s := range streams {
			total += s.pending()
			unmatched += len(s.unmatched)
			for sl, n := range s.relaxBySlack {
				relax[sl] += n
			}
			merged[i] = s
		}
		fillStats(stats, &req, offset, gen, total, unmatched, nil)
		stats.RelaxationsBySlack = relax
		g, err := newMerger(merged)
		if err != nil {
			yield(CorpusMeet{}, err)
			return
		}
		drain(ctx, g, offset, req.Limit, yield)
	}
	return seq, stats
}

// streamMeets implements RunStream as a thin adapter over Results,
// kept for compatibility with the pre-iterator surface: yield
// semantics (return false to stop) map directly onto the sequence.
func streamMeets(ctx context.Context, q Querier, req Request, yield func(CorpusMeet) bool) error {
	for m, err := range q.Results(ctx, req) {
		if err != nil {
			return err
		}
		if !yield(m) {
			return nil
		}
	}
	return nil
}
