package ncq

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

func TestSnapshotFacadeRoundTrip(t *testing.T) {
	db := fig1DB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every query behaves identically.
	a, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := back.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("meets differ after snapshot: %+v vs %+v", a, b)
	}
	ansA, err := db.Query(`SELECT value(e) FROM //title AS e`)
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := back.Query(`SELECT value(e) FROM //title AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if ansA.XML() != ansB.XML() {
		t.Errorf("query answers differ:\n%s\nvs\n%s", ansA.XML(), ansB.XML())
	}
	// The reloaded database serialises to equivalent XML.
	var xa, xb strings.Builder
	if err := db.WriteXML(&xa, false); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteXML(&xb, false); err != nil {
		t.Fatal(err)
	}
	if xa.String() != xb.String() {
		t.Errorf("XML differs:\n%s\nvs\n%s", xa.String(), xb.String())
	}
	if db.Stats() != back.Stats() {
		t.Errorf("stats differ: %+v vs %+v", db.Stats(), back.Stats())
	}
}

func TestOpenSnapshotErrors(t *testing.T) {
	if _, err := OpenSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// Every proper prefix of a valid snapshot must be rejected cleanly:
	// no panic, no partially loaded database.
	db := fig1DB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if back, err := OpenSnapshot(bytes.NewReader(raw[:cut])); err == nil || back != nil {
			t.Fatalf("prefix of %d/%d bytes accepted", cut, len(raw))
		}
	}
}

func TestSnapshotShardFacade(t *testing.T) {
	db := fig1DB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshotShard(&buf, 1, 3); err != nil {
		t.Fatal(err)
	}
	back, shard, shards, err := OpenSnapshotShard(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if shard != 1 || shards != 3 {
		t.Errorf("framing = %d/%d, want 1/3", shard, shards)
	}
	if back.Stats() != db.Stats() {
		t.Errorf("stats differ: %+v vs %+v", back.Stats(), db.Stats())
	}
	// Framing survives a save→load→save cycle byte-identically.
	var again bytes.Buffer
	if err := back.SaveSnapshotShard(&again, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("save→load→save is not byte-identical")
	}
}

// FuzzOpenSnapshot throws mutated snapshot bytes at the decoder. The
// invariants: never panic, never allocate unboundedly ahead of the
// input, and any accepted input must re-save to a loadable snapshot.
func FuzzOpenSnapshot(f *testing.F) {
	db, err := FromDocument(xmltree.Fig1())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("NCQSNAP2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := OpenSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := back.SaveSnapshot(&out); err != nil {
			t.Fatalf("accepted input re-saves with error: %v", err)
		}
		if _, err := OpenSnapshot(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-saved snapshot does not load: %v", err)
		}
	})
}
