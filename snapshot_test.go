package ncq

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSnapshotFacadeRoundTrip(t *testing.T) {
	db := fig1DB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Every query behaves identically.
	a, _, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := back.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("meets differ after snapshot: %+v vs %+v", a, b)
	}
	ansA, err := db.Query(`SELECT value(e) FROM //title AS e`)
	if err != nil {
		t.Fatal(err)
	}
	ansB, err := back.Query(`SELECT value(e) FROM //title AS e`)
	if err != nil {
		t.Fatal(err)
	}
	if ansA.XML() != ansB.XML() {
		t.Errorf("query answers differ:\n%s\nvs\n%s", ansA.XML(), ansB.XML())
	}
	// The reloaded database serialises to equivalent XML.
	var xa, xb strings.Builder
	if err := db.WriteXML(&xa, false); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteXML(&xb, false); err != nil {
		t.Fatal(err)
	}
	if xa.String() != xb.String() {
		t.Errorf("XML differs:\n%s\nvs\n%s", xa.String(), xb.String())
	}
	if db.Stats() != back.Stats() {
		t.Errorf("stats differ: %+v vs %+v", db.Stats(), back.Stats())
	}
}

func TestOpenSnapshotErrors(t *testing.T) {
	if _, err := OpenSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
