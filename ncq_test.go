package ncq

import (
	"reflect"
	"strings"
	"testing"

	"ncq/internal/xmltree"
)

func fig1DB(t *testing.T) *Database {
	t.Helper()
	db, err := FromDocument(xmltree.Fig1())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenString(t *testing.T) {
	db, err := OpenString(`<bib><book><author>Bit</author><year>1999</year></book></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 6 {
		t.Errorf("Len = %d, want 6", db.Len())
	}
	if db.Tag(db.Root()) != "bib" {
		t.Errorf("root tag = %q", db.Tag(db.Root()))
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := OpenString("not xml <"); err == nil {
		t.Error("bad XML accepted")
	}
	if _, err := FromDocument(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	db, err := OpenString(`<bib><book><author>Bit</author><year>1999</year></book>` +
		`<book><author>Other</author><year>1998</year></book></bib>`)
	if err != nil {
		t.Fatal(err)
	}
	meets, unmatched, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Tag != "book" {
		t.Fatalf("meets = %+v, want the first book", meets)
	}
	if len(unmatched) != 0 {
		t.Errorf("unmatched = %v", unmatched)
	}
}

func TestMeetOfTermsPaperExample(t *testing.T) {
	db := fig1DB(t)
	meets, unmatched, err := db.MeetOfTerms(nil, "Bit", "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 {
		t.Fatalf("meets = %+v", meets)
	}
	m := meets[0]
	if m.Node != 3 || m.Tag != "article" || m.Distance != 5 {
		t.Errorf("meet = %+v, want article o3 at distance 5", m)
	}
	if !reflect.DeepEqual(m.Witnesses, []NodeID{8, 12}) {
		t.Errorf("witnesses = %v", m.Witnesses)
	}
	if !reflect.DeepEqual(unmatched, []NodeID{19}) {
		t.Errorf("unmatched = %v", unmatched)
	}
	if m.Path != "/bibliography/institute/article" {
		t.Errorf("path = %q", m.Path)
	}
}

func TestMeetOfTermsSameAssociation(t *testing.T) {
	db := fig1DB(t)
	// "Bob" and "Byte" hit the same association: the nearest concept is
	// the cdata node itself, whose parent is an author (Section 3.1).
	meets, _, err := db.MeetOfTerms(nil, "Bob", "Byte")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Node != 15 || meets[0].Distance != 0 {
		t.Fatalf("meets = %+v, want the cdata node o15 at distance 0", meets)
	}
	if db.Tag(db.Parent(meets[0].Node)) != "author" {
		t.Error("the hierarchical information should exhibit the author parent")
	}
}

func TestSearchWrappers(t *testing.T) {
	db := fig1DB(t)
	hits := db.Search("ben")
	if len(hits) != 1 || hits[0].Node != 6 || hits[0].Value != "Ben" {
		t.Errorf("Search = %+v", hits)
	}
	if !strings.HasSuffix(hits[0].Path, "cdata@string") {
		t.Errorf("hit path = %q", hits[0].Path)
	}
	subs := db.SearchSubstring("Hack")
	if len(subs) != 2 {
		t.Errorf("SearchSubstring = %+v", subs)
	}
}

func TestMeet2AndDist(t *testing.T) {
	db := fig1DB(t)
	m, err := db.Meet2(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Node != 4 || m.Tag != "author" || m.Distance != 4 {
		t.Errorf("Meet2 = %+v", m)
	}
	d, err := db.Dist(12, 19)
	if err != nil || d != 6 {
		t.Errorf("Dist = (%d,%v)", d, err)
	}
	if _, err := db.Meet2(0, 3); err == nil {
		t.Error("invalid NodeID accepted")
	}
	if _, err := db.Dist(0, 3); err == nil {
		t.Error("Dist with invalid NodeID accepted")
	}
}

func TestMeetOfWithOptions(t *testing.T) {
	db := fig1DB(t)
	// Exclude the article: plain exclusion consumes the match.
	meets, _, err := db.MeetOf([]NodeID{8, 12}, ExcludePattern("//article"))
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 0 {
		t.Errorf("meets = %+v", meets)
	}
	// Nearest() climbs to the institute instead.
	meets, _, err = db.MeetOf([]NodeID{8, 12}, ExcludePattern("//article").Nearest())
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Tag != "institute" {
		t.Errorf("meets = %+v, want institute", meets)
	}
	// Within bound.
	meets, _, err = db.MeetOf([]NodeID{8, 12}, Within(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 0 {
		t.Errorf("Within(4) = %+v", meets)
	}
	// MaxLift via fluent chain.
	meets, _, err = db.MeetOf([]NodeID{8, 12}, ExcludeRoot().MaxLift(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Tag != "article" {
		t.Errorf("MaxLift(3) = %+v", meets)
	}
	// Bad exclude pattern surfaces as an error.
	if _, _, err := db.MeetOf([]NodeID{8, 12}, ExcludePattern("not-absolute")); err == nil {
		t.Error("bad exclude pattern accepted")
	}
	if _, _, err := db.MeetOf([]NodeID{0}, nil); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestRestrictImplementsKeywordSearch(t *testing.T) {
	db := fig1DB(t)
	// "Ben" and "Bit" meet at the author node; restricting the result
	// type to articles climbs to the enclosing article instead —
	// keyword search over articles (Section 6's claim).
	meets, _, err := db.MeetOfTerms(Restrict("//article"), "Ben", "Bit")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Tag != "article" || meets[0].Node != 3 {
		t.Fatalf("meets = %+v, want article o3", meets)
	}
	// Terms whose meet lies above every article go unmatched.
	meets, unmatched, err := db.MeetOfTerms(Restrict("//article"), "How", "RSI")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 0 {
		t.Errorf("meets = %+v, want none (titles live in different articles)", meets)
	}
	if len(unmatched) != 2 {
		t.Errorf("unmatched = %v, want both title hits", unmatched)
	}
	// Bad restrict pattern surfaces.
	if _, _, err := db.MeetOfTerms(Restrict("bad"), "Ben"); err == nil {
		t.Error("bad restrict pattern accepted")
	}
}

func TestExcludeRootOnTerms(t *testing.T) {
	db := fig1DB(t)
	// "1999" alone meets at the institute; excluding the root changes
	// nothing here, but the call path is exercised end to end.
	meets, _, err := db.MeetOfTerms(ExcludeRoot(), "1999")
	if err != nil {
		t.Fatal(err)
	}
	if len(meets) != 1 || meets[0].Tag != "institute" {
		t.Errorf("meets = %+v", meets)
	}
}

func TestQueryFacade(t *testing.T) {
	db := fig1DB(t)
	ans, err := db.Query(`SELECT meet(e1, e2) FROM //cdata AS e1, //cdata AS e2
		WHERE e1 CONTAINS 'Bit' AND e2 CONTAINS '1999'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Tags(); !reflect.DeepEqual(got, []string{"article"}) {
		t.Errorf("tags = %v", got)
	}
	if _, err := db.Query("garbage"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestNavigationAndValues(t *testing.T) {
	db := fig1DB(t)
	if db.Parent(2) != 1 || db.Parent(1) != 0 {
		t.Error("Parent wrong")
	}
	kids := db.Children(3)
	if len(kids) != 3 {
		t.Errorf("Children(3) = %v", kids)
	}
	if v := db.Value(11); v != "1999" {
		t.Errorf("Value(year) = %q", v)
	}
	if v := db.Value(12); v != "1999" {
		t.Errorf("Value(cdata) = %q", v)
	}
	if v, ok := db.Attr(3, "key"); !ok || v != "BB99" {
		t.Errorf("Attr = (%q,%v)", v, ok)
	}
	if p := db.Path(8); p != "/bibliography/institute/article/author/lastname/cdata" {
		t.Errorf("Path = %q", p)
	}
}

func TestSubtree(t *testing.T) {
	db := fig1DB(t)
	xml, err := db.Subtree(11) // the first <year>
	if err != nil {
		t.Fatal(err)
	}
	if xml != "<year>1999</year>" {
		t.Errorf("Subtree = %q", xml)
	}
	if _, err := db.Subtree(12); err == nil {
		t.Error("Subtree of a cdata node accepted")
	}
	if _, err := db.Subtree(0); err == nil {
		t.Error("Subtree of invalid node accepted")
	}
}

func TestNavigationOrderFacade(t *testing.T) {
	db := fig1DB(t)
	if !db.Before(3, 13) || db.Before(13, 3) {
		t.Error("Before wrong")
	}
	if db.NextSibling(3) != 13 || db.PrevSibling(13) != 3 {
		t.Error("sibling navigation wrong")
	}
	if db.NextSibling(1) != 0 {
		t.Error("root sibling should be 0")
	}
}

func TestRankMeetsBySourceProximity(t *testing.T) {
	meets := []Meet{
		{Node: 2, Witnesses: []NodeID{5, 90}},
		{Node: 4, Witnesses: []NodeID{7, 9}},
	}
	RankMeetsBySourceProximity(meets)
	if meets[0].Node != 4 {
		t.Errorf("order = %+v, want the tight span first", meets)
	}
}

func TestRankMeets(t *testing.T) {
	meets := []Meet{
		{Node: 7, Distance: 9},
		{Node: 2, Distance: 1},
		{Node: 1, Distance: 9},
	}
	RankMeets(meets)
	if meets[0].Node != 2 || meets[1].Node != 1 || meets[2].Node != 7 {
		t.Errorf("RankMeets order = %+v", meets)
	}
}

func TestStatsFacade(t *testing.T) {
	db := fig1DB(t)
	st := db.Stats()
	if st.Nodes != 19 || st.Paths == 0 || st.Associations == 0 || st.MemBytes <= 0 || st.Terms == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	db := fig1DB(t)
	var sb strings.Builder
	if err := db.WriteXML(&sb, false); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Errorf("round trip changed node count: %d vs %d", db2.Len(), db.Len())
	}
}

func TestReferencesFacade(t *testing.T) {
	db, err := OpenString(`<r><a id="x"><t>one</t></a><b idref="x"><t>two</t></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := db.References("id", "idref")
	if err != nil {
		t.Fatal(err)
	}
	if rg.Refs() != 1 {
		t.Errorf("Refs = %d", rg.Refs())
	}
	if n, ok := rg.Lookup("x"); !ok || db.Tag(n) != "a" {
		t.Errorf("Lookup = (%d,%v)", n, ok)
	}
	// The cdata under a (o4) and under b (o7): tree distance 6, graph 5.
	m, err := rg.Meet(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance != 5 {
		t.Errorf("graph meet distance = %d, want 5", m.Distance)
	}
	if _, err := rg.Meet(0, 4); err == nil {
		t.Error("invalid node accepted")
	}
	if _, err := db.References("id", "nosuchref"); err != nil {
		t.Errorf("absent ref attribute should give an empty graph, got %v", err)
	}
}
