package ncq

import (
	"fmt"
	"sort"
)

// Corpus is a named collection of databases queried together. It
// implements the Section 4 application: "we may want to know whether a
// certain bibliographical item that we found in one bibliography also
// lives in another bibliography; however, we have no idea how the
// relevant information is marked up" — the meet runs per document, so
// each answer carries the result type of its own instance.
type Corpus struct {
	names []string
	dbs   map[string]*Database
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{dbs: make(map[string]*Database)}
}

// Add registers a database under a name. Re-adding a name replaces the
// previous database but keeps its position.
func (c *Corpus) Add(name string, db *Database) error {
	if db == nil {
		return fmt.Errorf("ncq: corpus: nil database for %q", name)
	}
	if _, exists := c.dbs[name]; !exists {
		c.names = append(c.names, name)
	}
	c.dbs[name] = db
	return nil
}

// Names returns the registered names in insertion order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Get returns the database registered under name.
func (c *Corpus) Get(name string) (*Database, bool) {
	db, ok := c.dbs[name]
	return db, ok
}

// Len returns the number of registered databases.
func (c *Corpus) Len() int { return len(c.names) }

// CorpusMeet is one nearest concept found in one member document.
type CorpusMeet struct {
	Source string // the database's registered name
	Meet
}

// MeetOfTerms runs the nearest-concept query against every member and
// returns all answers, ranked by distance (ties by source name, then
// document order). Documents in which the terms do not meet simply
// contribute nothing.
func (c *Corpus) MeetOfTerms(opt *Options, terms ...string) ([]CorpusMeet, error) {
	var out []CorpusMeet
	for _, name := range c.names {
		meets, _, err := c.dbs[name].MeetOfTerms(opt, terms...)
		if err != nil {
			return nil, fmt.Errorf("ncq: corpus %q: %w", name, err)
		}
		for _, m := range meets {
			out = append(out, CorpusMeet{Source: name, Meet: m})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}
