package ncq

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ncq/internal/query"
)

// Corpus is a named collection of databases queried together. It
// implements the Section 4 application: "we may want to know whether a
// certain bibliographical item that we found in one bibliography also
// lives in another bibliography; however, we have no idea how the
// relevant information is marked up" — the meet runs per document, so
// each answer carries the result type of its own instance.
//
// A Corpus is safe for concurrent use: any number of readers and
// queries may run while documents are added, replaced or removed.
// Queries observe a consistent snapshot of the membership taken when
// they start; a concurrent Add or Remove affects later queries only.
type Corpus struct {
	mu      sync.RWMutex
	names   []string
	dbs     map[string]*Database
	gen     uint64
	workers int // fan-out width for corpus-wide queries; 0 = GOMAXPROCS
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{dbs: make(map[string]*Database)}
}

// Add registers a database under a name. Re-adding a name replaces the
// previous database but keeps its position.
func (c *Corpus) Add(name string, db *Database) error {
	_, err := c.Put(name, db)
	return err
}

// Put is Add reporting whether an existing database was replaced. The
// check happens under the write lock, so concurrent Puts of the same
// name agree on which one created the entry.
func (c *Corpus) Put(name string, db *Database) (replaced bool, err error) {
	if db == nil {
		return false, fmt.Errorf("ncq: corpus: nil database for %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.dbs[name]; exists {
		replaced = true
	} else {
		c.names = append(c.names, name)
	}
	c.dbs[name] = db
	c.gen++
	return replaced, nil
}

// Remove evicts the database registered under name and reports whether
// it was present.
func (c *Corpus) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.dbs[name]; !ok {
		return false
	}
	delete(c.dbs, name)
	for i, n := range c.names {
		if n == name {
			c.names = append(c.names[:i], c.names[i+1:]...)
			break
		}
	}
	c.gen++
	return true
}

// Names returns the registered names in insertion order.
func (c *Corpus) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Get returns the database registered under name.
func (c *Corpus) Get(name string) (*Database, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db, ok := c.dbs[name]
	return db, ok
}

// Len returns the number of registered databases.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// Generation returns a counter that increments on every membership
// mutation (Add, Remove, replace). Cached query results keyed by the
// generation are implicitly invalidated by any corpus change.
func (c *Corpus) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// SetParallelism sets how many member documents a corpus-wide query
// processes concurrently. n <= 0 restores the default (GOMAXPROCS);
// n == 1 forces serial execution.
func (c *Corpus) SetParallelism(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// snapshot captures the membership under the read lock so queries run
// against a consistent view without blocking writers.
func (c *Corpus) snapshot() (names []string, dbs []*Database, workers int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names = make([]string, len(c.names))
	copy(names, c.names)
	dbs = make([]*Database, len(names))
	for i, n := range names {
		dbs[i] = c.dbs[n]
	}
	workers = c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return names, dbs, workers
}

// forEachDoc runs fn(i) for every document index with at most workers
// goroutines in flight and returns the first error (by document order).
func forEachDoc(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CorpusMeet is one nearest concept found in one member document.
type CorpusMeet struct {
	Source string `json:"source"` // the database's registered name
	Meet
}

// MeetOfTerms runs the nearest-concept query against every member and
// returns all answers, ranked by distance (ties by source name, then
// document order). Documents in which the terms do not meet simply
// contribute nothing. Members are searched concurrently, bounded by
// SetParallelism.
func (c *Corpus) MeetOfTerms(opt *Options, terms ...string) ([]CorpusMeet, error) {
	names, dbs, workers := c.snapshot()
	perDoc := make([][]Meet, len(names))
	err := forEachDoc(len(names), workers, func(i int) error {
		meets, _, err := dbs[i].MeetOfTerms(opt, terms...)
		if err != nil {
			return fmt.Errorf("ncq: corpus %q: %w", names[i], err)
		}
		perDoc[i] = meets
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []CorpusMeet
	for i, meets := range perDoc {
		for _, m := range meets {
			out = append(out, CorpusMeet{Source: names[i], Meet: m})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Node < out[j].Node
	})
	return out, nil
}

// CorpusAnswer is one member document's answer to a corpus-wide query.
type CorpusAnswer struct {
	Source string  `json:"source"`
	Answer *Answer `json:"answer"`
}

// Query evaluates a query in the paper's SQL variant against every
// member document (parsed once, evaluated per member, concurrently) and
// returns the per-source answers in membership order. Members whose
// answer has no rows are omitted — with nearest concept queries the
// interesting outcome is where the terms meet, not where they do not.
func (c *Corpus) Query(src string) ([]CorpusAnswer, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	names, dbs, workers := c.snapshot()
	answers := make([]*Answer, len(names))
	err = forEachDoc(len(names), workers, func(i int) error {
		ans, err := dbs[i].engine.Eval(q)
		if err != nil {
			return fmt.Errorf("ncq: corpus %q: %w", names[i], err)
		}
		answers[i] = ans
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []CorpusAnswer
	for i, ans := range answers {
		if ans != nil && len(ans.Rows) > 0 {
			out = append(out, CorpusAnswer{Source: names[i], Answer: ans})
		}
	}
	return out, nil
}
