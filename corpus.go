package ncq

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ncq/internal/fulltext"
	"ncq/internal/shard"
	"ncq/internal/xmltree"
)

// ErrUnknownDoc is returned (wrapped) by the per-member query methods
// when the named document is not registered.
var ErrUnknownDoc = errors.New("unknown document")

// Corpus is a named collection of databases queried together. It
// implements the Section 4 application: "we may want to know whether a
// certain bibliographical item that we found in one bibliography also
// lives in another bibliography; however, we have no idea how the
// relevant information is marked up" — the meet runs per document, so
// each answer carries the result type of its own instance.
//
// A member is either a plain database (Add, Put) or a sharded one
// (AddSharded): one large document split into subtree shards that are
// searched in parallel and merged back into one ranked answer, so
// callers always address the member by its logical name.
//
// A Corpus is safe for concurrent use: any number of readers and
// queries may run while documents are added, replaced or removed.
// Queries observe a consistent snapshot of the membership taken when
// they start; a concurrent Add or Remove affects later queries only.
type Corpus struct {
	mu      sync.RWMutex
	names   []string
	dbs     map[string]*Database   // plain members
	sharded map[string][]*Database // sharded members, in shard order
	gen     uint64
	workers int // fan-out width for corpus-wide queries; 0 = GOMAXPROCS
	onMut   func(Mutation)

	// thesaurus holds the synonym classes vague requests with Expand
	// set broaden their terms through; nil means no expansion beyond
	// the literal terms.
	thesaurus *Thesaurus
}

// Mutation describes one membership change, as observed by the hook
// installed with SetMutationHook. Gen is the corpus generation the
// change produced — the exact value a recovered corpus must report
// again for generation-stamped cursors and the cluster generation
// vector to stay valid across a restart.
type Mutation struct {
	Name   string
	Gen    uint64
	Shards int  // shard count of a sharded member; 0 for a plain member
	Delete bool // true for Remove, false for Put/AddSharded
}

// SetMutationHook installs fn to be called on every membership
// mutation (Put, AddSharded, AddShardDBs, Remove), synchronously and
// under the corpus write lock — the generation it reports is exact and
// no later mutation can be observed before fn returns. This is the
// attachment point of the durability layer: fn persists the change
// before the corpus acknowledges it. fn must not call back into the
// corpus. A nil fn removes the hook.
func (c *Corpus) SetMutationHook(fn func(Mutation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMut = fn
}

// notify fires the mutation hook; the caller holds the write lock.
func (c *Corpus) notify(m Mutation) {
	if c.onMut != nil {
		c.onMut(m)
	}
}

// RestoreGeneration forces the corpus generation, so a corpus rebuilt
// from a snapshot+log reports the exact pre-crash generation rather
// than one recount of the surviving members. Only the durability
// layer's recovery path should call this, after replay and before the
// corpus starts serving.
func (c *Corpus) RestoreGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen = gen
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{
		dbs:     make(map[string]*Database),
		sharded: make(map[string][]*Database),
	}
}

// Add registers a database under a name. Re-adding a name replaces the
// previous database but keeps its position.
func (c *Corpus) Add(name string, db *Database) error {
	_, err := c.Put(name, db)
	return err
}

// Put is Add reporting whether an existing database was replaced. The
// check happens under the write lock, so concurrent Puts of the same
// name agree on which one created the entry.
func (c *Corpus) Put(name string, db *Database) (replaced bool, err error) {
	if db == nil {
		return false, fmt.Errorf("ncq: corpus: nil database for %q", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	replaced = c.register(name)
	c.dbs[name] = db
	c.notify(Mutation{Name: name, Gen: c.gen})
	return replaced, nil
}

// AddSharded splits doc into at most k subtree shards (see
// internal/shard: the split happens at the top-level children of the
// root, balanced by node count), loads every shard, and registers the
// group under one logical name. Queries addressed to name — or to the
// whole corpus — fan out over the shards in parallel and merge the
// per-shard answers into one ranked result, so callers see a single
// logical document.
//
// Note that a sharded member cannot report meets at the document root:
// witnesses living in different shards never meet. Large-document
// queries exclude the root anyway (the paper's DBLP case study); with
// ExcludeRoot set, a sharded member returns exactly the answers of the
// unsharded document.
//
// AddSharded returns the shard databases it registered (whose count
// may be lower than k) and whether an existing member of that name was
// replaced. The returned slice lets the caller report on exactly this
// upload even when a concurrent registration immediately replaces it.
func (c *Corpus) AddSharded(name string, doc *xmltree.Document, k int) (dbs []*Database, replaced bool, err error) {
	if doc == nil {
		return nil, false, fmt.Errorf("ncq: corpus: nil document for %q", name)
	}
	parts := shard.Split(doc, k)
	dbs = make([]*Database, len(parts))
	// Shard loading is CPU-bound (Monet transform + index build); use
	// the machine, not the corpus fan-out width, which may be tuned
	// down for query latency.
	err = forEachDoc(context.Background(), len(parts), runtime.GOMAXPROCS(0), func(i int) error { //lint:ncqvet-ignore AddSharded is a ctx-less public API; the parse fan-out has no caller deadline to inherit
		db, err := FromDocument(parts[i])
		if err != nil {
			return fmt.Errorf("ncq: corpus %q shard %d: %w", name, i, err)
		}
		dbs[i] = db
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	replaced, err = c.AddShardDBs(name, dbs)
	if err != nil {
		return nil, false, err
	}
	out := make([]*Database, len(dbs))
	copy(out, dbs)
	return out, replaced, nil
}

// AddShardDBs registers already-loaded shard databases as one sharded
// member — the registration half of AddSharded, used directly when the
// shards were built elsewhere: loaded from per-shard snapshot files on
// recovery, or parsed incrementally from a streaming upload.
func (c *Corpus) AddShardDBs(name string, dbs []*Database) (replaced bool, err error) {
	if len(dbs) == 0 {
		return false, fmt.Errorf("ncq: corpus: no shards for %q", name)
	}
	for i, db := range dbs {
		if db == nil {
			return false, fmt.Errorf("ncq: corpus: nil shard %d for %q", i, name)
		}
	}
	own := make([]*Database, len(dbs))
	copy(own, dbs)
	c.mu.Lock()
	defer c.mu.Unlock()
	replaced = c.register(name)
	c.sharded[name] = own
	c.notify(Mutation{Name: name, Gen: c.gen, Shards: len(own)})
	return replaced, nil
}

// register claims name under the write lock: it clears any previous
// plain or sharded entry, keeps the member's position (or appends a
// new one), bumps the generation, and reports whether an existing
// member was replaced.
func (c *Corpus) register(name string) (replaced bool) {
	_, plain := c.dbs[name]
	_, shrd := c.sharded[name]
	replaced = plain || shrd
	if !replaced {
		c.names = append(c.names, name)
	}
	delete(c.dbs, name)
	delete(c.sharded, name)
	c.gen++
	return replaced
}

// Remove evicts the member registered under name — all of its shards
// for a sharded member — and reports whether it was present.
func (c *Corpus) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, plain := c.dbs[name]
	_, shrd := c.sharded[name]
	if !plain && !shrd {
		return false
	}
	delete(c.dbs, name)
	delete(c.sharded, name)
	for i, n := range c.names {
		if n == name {
			c.names = append(c.names[:i], c.names[i+1:]...)
			break
		}
	}
	c.gen++
	c.notify(Mutation{Name: name, Gen: c.gen, Delete: true})
	return true
}

// Names returns the registered logical names in insertion order.
func (c *Corpus) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Get returns the database registered under name. Sharded members have
// no single database; Get reports false for them — use Shards.
func (c *Corpus) Get(name string) (*Database, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	db, ok := c.dbs[name]
	return db, ok
}

// Has reports whether a member (plain or sharded) is registered under
// name.
func (c *Corpus) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, plain := c.dbs[name]
	_, shrd := c.sharded[name]
	return plain || shrd
}

// Shards returns the member's databases in shard order — a single
// element for a plain member — and whether name is registered.
func (c *Corpus) Shards(name string) ([]*Database, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if db, ok := c.dbs[name]; ok {
		return []*Database{db}, true
	}
	if dbs, ok := c.sharded[name]; ok {
		out := make([]*Database, len(dbs))
		copy(out, dbs)
		return out, true
	}
	return nil, false
}

// ShardCount returns how many shards the named member holds: 0 when
// the name is unknown, 1 for a plain member.
func (c *Corpus) ShardCount(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.dbs[name]; ok {
		return 1
	}
	return len(c.sharded[name])
}

// AggregateStats sums the storage statistics of several databases —
// typically the shards of one logical member.
func AggregateStats(dbs []*Database) (st Stats) {
	for _, db := range dbs {
		s := db.Stats()
		st.Nodes += s.Nodes
		st.Paths += s.Paths
		st.Associations += s.Associations
		st.MemBytes += s.MemBytes
		st.Terms += s.Terms
	}
	return st
}

// MemberStats aggregates the storage statistics of the named member
// across its shards; shards is 1 for a plain member. ok reports
// whether the name is registered.
func (c *Corpus) MemberStats(name string) (st Stats, shards int, ok bool) {
	dbs, ok := c.Shards(name)
	if !ok {
		return Stats{}, 0, false
	}
	return AggregateStats(dbs), len(dbs), true
}

// Len returns the number of registered members (a sharded member
// counts once).
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// Generation returns a counter that increments on every membership
// mutation (Add, AddSharded, Remove, replace). Cached query results
// keyed by the generation are implicitly invalidated by any corpus
// change.
func (c *Corpus) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// SetParallelism sets how many member databases a corpus-wide query
// processes concurrently. n <= 0 restores the default (GOMAXPROCS);
// n == 1 forces serial execution.
func (c *Corpus) SetParallelism(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// Parallelism returns the effective fan-out width of corpus-wide
// queries (GOMAXPROCS when unset).
func (c *Corpus) Parallelism() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.workers
}

// SetThesaurus installs the synonym classes that vague requests with
// Expand set broaden their terms through (nil removes them). The
// corpus generation is bumped so cached results computed against the
// previous classes — and cursors minted from them — are invalidated;
// installing a thesaurus is not a membership mutation, so the
// durability hook does not fire.
func (c *Corpus) SetThesaurus(t *Thesaurus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.thesaurus = t
	c.gen++
}

// Thesaurus returns the installed synonym classes, nil when none.
func (c *Corpus) Thesaurus() *Thesaurus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.thesaurus
}

// expander returns the underlying fulltext thesaurus for query-time
// term expansion; nil when none is installed.
func (c *Corpus) expander() *fulltext.Thesaurus {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.thesaurus == nil {
		return nil
	}
	return c.thesaurus.t
}

// member is one fan-out unit of a query: a plain database or a single
// shard of a sharded member.
type member struct {
	name  string // the logical (registered) name
	shard int    // 1-based shard number; 0 for plain members
	db    *Database
}

// snapshot captures the flattened membership under the read lock so
// queries run against a consistent view without blocking writers.
// Members appear in insertion order with their shards contiguous. The
// returned generation identifies the captured membership — the mark
// minted cursors carry for staleness detection.
func (c *Corpus) snapshot() (members []member, workers int, gen uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range c.names {
		if db, ok := c.dbs[n]; ok {
			members = append(members, member{name: n, db: db})
			continue
		}
		for i, db := range c.sharded[n] {
			members = append(members, member{name: n, shard: i + 1, db: db})
		}
	}
	workers = c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return members, workers, c.gen
}

// memberOf is snapshot restricted to one logical name; found reports
// whether the name is registered.
func (c *Corpus) memberOf(name string) (members []member, workers int, gen uint64, found bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if db, ok := c.dbs[name]; ok {
		members = []member{{name: name, db: db}}
	} else if dbs, ok := c.sharded[name]; ok {
		for i, db := range dbs {
			members = append(members, member{name: name, shard: i + 1, db: db})
		}
	} else {
		return nil, 0, 0, false
	}
	workers = c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return members, workers, c.gen, true
}

// forEachDoc runs fn(i) for every document index with at most workers
// goroutines in flight and returns the first error (by document
// order). When ctx is cancelled, dispatch stops, in-flight workers are
// drained (no goroutine outlives the call) and the context's error is
// returned — this is how cancellation and deadlines propagate through
// every shard/member fan-out.
func forEachDoc(ctx context.Context, n, workers int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CorpusMeet is one nearest concept found in one member database.
type CorpusMeet struct {
	Source string `json:"source"`          // the member's registered (logical) name
	Shard  int    `json:"shard,omitempty"` // 1-based shard of a sharded member; 0 otherwise
	Meet
}

// MeetOfTerms runs the nearest-concept query against every member and
// returns all answers, ranked by distance (ties by source name, shard,
// then document order). Documents in which the terms do not meet
// simply contribute nothing. Members — including the individual shards
// of sharded members — are searched concurrently, bounded by
// SetParallelism. It is a wrapper over Run; use Run directly for
// cancellation, deadlines, limits and pagination.
func (c *Corpus) MeetOfTerms(opt *Options, terms ...string) ([]CorpusMeet, error) {
	if len(terms) == 0 {
		return nil, nil
	}
	res, err := c.Run(context.Background(), Request{Terms: terms, Options: opt}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, err
	}
	return res.Meets, nil
}

// MeetOfTermsIn runs the term meet against the named member only,
// fanning out over its shards when it is sharded, and returns the
// merged ranked answers plus the number of inputs that found no
// partner. The error wraps ErrUnknownDoc when name is not registered.
// It is a wrapper over Run.
func (c *Corpus) MeetOfTermsIn(name string, opt *Options, terms ...string) ([]CorpusMeet, int, error) {
	if len(terms) == 0 {
		if !c.Has(name) {
			return nil, 0, fmt.Errorf("ncq: corpus: %w %q", ErrUnknownDoc, name)
		}
		return nil, 0, nil
	}
	res, err := c.Run(context.Background(), Request{Doc: name, Terms: terms, Options: opt}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, 0, err
	}
	return res.Meets, res.Unmatched, nil
}

// CorpusAnswer is one member's answer to a corpus-wide query. For
// sharded members the per-shard answers are merged into one.
type CorpusAnswer struct {
	Source string  `json:"source"`
	Answer *Answer `json:"answer"`
}

// mergeAnswers combines the per-shard answers of one logical member:
// rows are concatenated in shard order and — for meet queries —
// re-ranked by distance with a stable tie-break, mirroring the paper's
// ranking heuristic across the merged result. Row and witness OIDs
// stay shard-local (each shard numbers its own tree), so they identify
// nodes only together with a shard — callers that need to resolve
// witnesses should use the terms API, whose CorpusMeet carries the
// shard number.
func mergeAnswers(answers []*Answer) *Answer {
	if len(answers) == 1 {
		return answers[0]
	}
	merged := &Answer{Columns: answers[0].Columns, IsMeet: answers[0].IsMeet}
	for _, a := range answers {
		merged.Rows = append(merged.Rows, a.Rows...)
		merged.Unmatched = append(merged.Unmatched, a.Unmatched...)
	}
	if merged.IsMeet {
		sort.SliceStable(merged.Rows, func(i, j int) bool {
			return merged.Rows[i].Distance < merged.Rows[j].Distance
		})
	}
	return merged
}

// Query evaluates a query in the paper's SQL variant against every
// member (parsed once, evaluated per shard, concurrently) and returns
// the per-source answers in membership order, the shards of each
// sharded member merged into one ranked answer. Members whose answer
// has no rows are omitted — with nearest concept queries the
// interesting outcome is where the terms meet, not where they do not.
// It is a wrapper over Run.
func (c *Corpus) Query(src string) ([]CorpusAnswer, error) {
	res, err := c.Run(context.Background(), Request{Query: src}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// QueryIn evaluates a query against the named member only, merging
// shard answers into one. Unlike the corpus-wide Query it returns the
// answer even when it has no rows. For sharded members the merged
// rows' OIDs are shard-local (see mergeAnswers). The error wraps
// ErrUnknownDoc when name is not registered. It is a wrapper over Run.
func (c *Corpus) QueryIn(name, src string) (*Answer, error) {
	res, err := c.Run(context.Background(), Request{Doc: name, Query: src}) //lint:ncqvet-ignore legacy ctx-less public API; ctx-aware callers use Run
	if err != nil {
		return nil, err
	}
	return res.Answers[0].Answer, nil
}
