package ncq

// Run and RunStream — the Querier implementations of Database and
// Corpus. Execution threads the caller's context through the full-text
// searches and the shard/member fan-out, and pushes Limit down so a
// page never materialises more of the ranked answer set than it needs.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ncq/internal/core"
	"ncq/internal/fulltext"
	"ncq/internal/query"
)

// Run executes the request against the single loaded document.
// Request.Doc must be empty: a Database holds one anonymous document.
func (db *Database) Run(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.Doc != "" {
		return nil, fmt.Errorf("ncq: %w %q: a Database holds a single document; clear Request.Doc or run against a Corpus", ErrUnknownDoc, req.Doc)
	}
	offset, err := req.offset()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{}
	if req.isQuery() {
		ans, err := db.engine.Query(req.Query)
		if err != nil {
			return nil, err
		}
		res.Answers = []CorpusAnswer{{Answer: ans}}
		pageAnswerRows(res, offset, req.Limit, req.fingerprint(), true)
	} else {
		need := pageNeed(offset, req.Limit)
		meets, total, unmatched, err := db.termMeets(ctx, req.Terms, req.Options, need)
		if err != nil {
			return nil, err
		}
		if need == 0 {
			RankMeets(meets) // termMeets only ranks when it truncates
		}
		ranked := make([]CorpusMeet, len(meets))
		for i, m := range meets {
			ranked[i] = CorpusMeet{Meet: m}
		}
		res.Meets, res.Truncated, res.NextCursor = pageMeets(ranked, total, offset, req.Limit, req.fingerprint())
		res.Unmatched = len(unmatched)
		res.UnmatchedNodes = unmatched
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunStream delivers the ranked meets of a term request one at a time.
func (db *Database) RunStream(ctx context.Context, req Request, yield func(CorpusMeet) bool) error {
	return streamMeets(ctx, db, req, yield)
}

// termMeets is the per-database unit of term execution: one full-text
// search per term followed by the multi-set meet. When need > 0 the
// meets are ranked by (distance, document order) and truncated to the
// first need entries — the pushed-down limit — while total still
// counts the full candidate set; with need == 0 they stay in document
// order (callers that want every meet ranked sort once themselves, so
// an unlimited corpus run is not sorted twice). The context is checked
// between the searches so a cancelled query stops mid-document.
func (db *Database) termMeets(ctx context.Context, terms []string, opt *Options, need int) (meets []Meet, total int, unmatched []NodeID, err error) {
	copt, err := opt.compile(db)
	if err != nil {
		return nil, 0, nil, err
	}
	sets := make([][]NodeID, 0, len(terms))
	for _, t := range terms {
		if err := ctx.Err(); err != nil {
			return nil, 0, nil, err
		}
		sets = append(sets, fulltext.Owners(db.index.SearchSubstring(t)))
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, nil, err
	}
	// The context threads into the roll-up itself (checked per
	// contracted level), so a deadline interrupts one huge member
	// mid-meet, not just between members.
	results, un, err := core.MeetMultiContext(ctx, db.store, sets, copt)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("ncq: %w", err)
	}
	meets = db.wrapResults(results)
	total = len(meets)
	if need > 0 {
		RankMeets(meets)
		if len(meets) > need {
			meets = meets[:need]
		}
	}
	return meets, total, un, nil
}

// lessCorpusMeet is the global ranking of merged answers: ascending
// distance, ties by source name, shard, then document order — the
// total order every page of a paginated run is cut from.
func lessCorpusMeet(a, b CorpusMeet) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Node < b.Node
}

// pageMeets cuts the page at offset from the ranked list. ranked holds
// at least min(total, offset+limit) entries — everything when limit is
// 0 — and total counts the full candidate set, so the truncation flag
// is exact even though the tail was never materialised.
func pageMeets(ranked []CorpusMeet, total, offset, limit int, fp uint32) (page []CorpusMeet, truncated bool, next string) {
	page = ranked
	if offset > 0 {
		if offset >= len(page) {
			page = nil
		} else {
			page = page[offset:]
		}
	}
	if limit > 0 && len(page) > limit {
		page = page[:limit]
	}
	if limit > 0 && total > offset+limit {
		truncated = true
		next = encodeCursor(offset+limit, fp)
	}
	return page, truncated, next
}

// pageAnswerRows applies offset and limit to a query-language result:
// the page window runs over the concatenated rows of all answers, in
// answer order. keepEmpty retains answers whose rows were consumed by
// the offset (a run against one named document always reports its
// single answer); a corpus-wide run drops them, matching the
// omit-empty-answers contract of Corpus.Query.
func pageAnswerRows(res *Result, offset, limit int, fp uint32, keepEmpty bool) {
	if offset > 0 {
		kept := res.Answers[:0]
		skip := offset
		for _, a := range res.Answers {
			rows := a.Answer.Rows
			if skip >= len(rows) {
				skip -= len(rows)
				if keepEmpty {
					a.Answer.Rows = rows[len(rows):]
					kept = append(kept, a)
				}
				continue
			}
			a.Answer.Rows = rows[skip:]
			skip = 0
			kept = append(kept, a)
		}
		res.Answers = kept
	}
	if limit > 0 {
		remaining := limit
		for i := range res.Answers {
			rows := res.Answers[i].Answer.Rows
			if len(rows) > remaining {
				res.Answers[i].Answer.Rows = rows[:remaining]
				res.Truncated = true
			}
			remaining -= len(res.Answers[i].Answer.Rows)
			if remaining <= 0 {
				for j := i + 1; j < len(res.Answers); j++ {
					if len(res.Answers[j].Answer.Rows) > 0 {
						res.Truncated = true
					}
				}
				res.Answers = res.Answers[:i+1]
				break
			}
		}
	}
	if res.Truncated {
		delivered := 0
		for _, a := range res.Answers {
			delivered += len(a.Answer.Rows)
		}
		res.NextCursor = encodeCursor(offset+delivered, fp)
	}
}

// Run executes the request against the corpus: the whole membership,
// or the member named by Request.Doc (fanning out over its shards).
// Cancellation and deadlines on ctx stop the member fan-out mid-flight
// and return ctx.Err().
func (c *Corpus) Run(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if err := req.validate(); err != nil {
		return nil, err
	}
	offset, err := req.offset()
	if err != nil {
		return nil, err
	}
	var res *Result
	if req.isQuery() {
		res, err = c.runQuery(ctx, req, offset)
	} else {
		res, err = c.runTerms(ctx, req, offset)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunStream delivers the ranked meets of a term request one at a time.
func (c *Corpus) RunStream(ctx context.Context, req Request, yield func(CorpusMeet) bool) error {
	return streamMeets(ctx, c, req, yield)
}

// resolve returns the fan-out units of the request: the whole
// membership, or the shards of the named member.
func (c *Corpus) resolve(doc string) ([]member, int, error) {
	if doc == "" {
		members, workers := c.snapshot()
		return members, workers, nil
	}
	members, workers, found := c.memberOf(doc)
	if !found {
		return nil, 0, fmt.Errorf("ncq: corpus: %w %q", ErrUnknownDoc, doc)
	}
	return members, workers, nil
}

// runTerms fans the term meet over the members, each member ranking
// and truncating locally to what the page needs, and merges the
// per-member heads into the globally ranked page. The top offset+limit
// answers of the union are always contained in the union of each
// member's top offset+limit answers, so the pushed-down truncation
// returns exactly the answers a full rank-then-cut would.
func (c *Corpus) runTerms(ctx context.Context, req Request, offset int) (*Result, error) {
	members, workers, err := c.resolve(req.Doc)
	if err != nil {
		return nil, err
	}
	need := pageNeed(offset, req.Limit)
	type perDoc struct {
		meets     []Meet
		total     int
		unmatched int
	}
	per := make([]perDoc, len(members))
	err = forEachDoc(ctx, len(members), workers, func(i int) error {
		meets, total, un, err := members[i].db.termMeets(ctx, req.Terms, req.Options, need)
		if err != nil {
			return fmt.Errorf("ncq: corpus %q: %w", members[i].name, err)
		}
		per[i] = perDoc{meets: meets, total: total, unmatched: len(un)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []CorpusMeet
	res := &Result{}
	total := 0
	for i, pd := range per {
		total += pd.total
		res.Unmatched += pd.unmatched
		for _, m := range pd.meets {
			merged = append(merged, CorpusMeet{Source: members[i].name, Shard: members[i].shard, Meet: m})
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return lessCorpusMeet(merged[i], merged[j]) })
	res.Meets, res.Truncated, res.NextCursor = pageMeets(merged, total, offset, req.Limit, req.fingerprint())
	return res, nil
}

// runQuery evaluates a query-language request: parsed once, evaluated
// per member concurrently, shard answers merged per logical name.
func (c *Corpus) runQuery(ctx context.Context, req Request, offset int) (*Result, error) {
	q, err := query.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	members, workers, err := c.resolve(req.Doc)
	if err != nil {
		return nil, err
	}
	answers := make([]*Answer, len(members))
	err = forEachDoc(ctx, len(members), workers, func(i int) error {
		ans, err := members[i].db.engine.Eval(q)
		if err != nil {
			return fmt.Errorf("ncq: corpus %q: %w", members[i].name, err)
		}
		answers[i] = ans
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if req.Doc != "" {
		res.Answers = []CorpusAnswer{{Source: req.Doc, Answer: mergeAnswers(answers)}}
	} else {
		// Merge shard answers per logical member, omitting members whose
		// answer has no rows: with nearest concept queries the
		// interesting outcome is where the terms meet, not where they
		// do not.
		for i := 0; i < len(members); {
			j := i + 1
			for j < len(members) && members[j].name == members[i].name {
				j++
			}
			merged := mergeAnswers(answers[i:j])
			if merged != nil && len(merged.Rows) > 0 {
				res.Answers = append(res.Answers, CorpusAnswer{Source: members[i].name, Answer: merged})
			}
			i = j
		}
	}
	pageAnswerRows(res, offset, req.Limit, req.fingerprint(), req.Doc != "")
	return res, nil
}

// streamMeets implements RunStream on top of Run: the meets are
// computed and ranked in full (ranking is global, so the first meet is
// only known once every member answered), then streamed; the yield
// callback stops consumption early, and the context is honoured both
// during execution and between yields.
func streamMeets(ctx context.Context, q Querier, req Request, yield func(CorpusMeet) bool) error {
	if req.isQuery() {
		return errors.New("ncq: RunStream supports term requests only; use Run for query-language requests")
	}
	res, err := q.Run(ctx, req)
	if err != nil {
		return err
	}
	for _, m := range res.Meets {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !yield(m) {
			return nil
		}
	}
	return nil
}
