package ncq

// Run and RunStream — the Querier implementations of Database and
// Corpus. Term execution is iterator-native (results.go): Run drains
// the same incrementally merged sequence the streaming surfaces
// consume and attaches the page metadata; query-language execution
// evaluates per member and pages over the concatenated answer rows.

import (
	"context"
	"fmt"
	"time"

	"ncq/internal/query"
)

// Run executes the request against the single loaded document.
// Request.Doc must be empty: a Database holds one anonymous document.
func (db *Database) Run(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if err := req.validate(); err != nil {
		return nil, err
	}
	if req.Doc != "" {
		return nil, fmt.Errorf("ncq: %w %q: a Database holds a single document; clear Request.Doc or run against a Corpus", ErrUnknownDoc, req.Doc)
	}
	var res *Result
	if req.isQuery() {
		offset, _, err := req.page()
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ans, err := db.engine.Query(req.Query)
		if err != nil {
			return nil, err
		}
		res = &Result{Answers: []CorpusAnswer{{Answer: ans}}}
		pageAnswerRows(res, offset, req.Limit, req.fingerprint(), 0, true)
	} else {
		var err error
		res, err = drainResults(db.ResultsWithStats(ctx, req))
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunStream delivers the ranked meets of a term request one at a time.
func (db *Database) RunStream(ctx context.Context, req Request, yield func(CorpusMeet) bool) error {
	return streamMeets(ctx, db, req, yield)
}

// drainResults is the batch view of the incremental core: consume the
// whole (already offset- and limit-windowed) sequence and attach the
// stream counters as page metadata — "Run is drain plus paginate".
func drainResults(seq func(func(CorpusMeet, error) bool), stats *StreamStats) (*Result, error) {
	res := &Result{}
	for m, err := range seq {
		if err != nil {
			return nil, err
		}
		res.Meets = append(res.Meets, m)
	}
	res.Unmatched = stats.Unmatched
	res.UnmatchedNodes = stats.UnmatchedNodes
	res.Truncated = stats.Truncated
	res.NextCursor = stats.NextCursor
	res.RelaxationsBySlack = stats.RelaxationsBySlack
	return res, nil
}

// lessCorpusMeet is the global ranking of merged answers: ascending
// distance, ties by source name, shard, then document order — the
// total order every page of a paginated run is cut from (the k-way
// merge of results.go yields in exactly this order).
func lessCorpusMeet(a, b CorpusMeet) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Source != b.Source {
		return a.Source < b.Source
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Node < b.Node
}

// pageAnswerRows applies offset and limit to a query-language result:
// the page window runs over the concatenated rows of all answers, in
// answer order. keepEmpty retains answers whose rows were consumed by
// the offset (a run against one named document always reports its
// single answer); a corpus-wide run drops them, matching the
// omit-empty-answers contract of Corpus.Query. gen is stamped into the
// minted cursor so a later page can detect a corpus mutation.
func pageAnswerRows(res *Result, offset, limit int, fp uint32, gen uint64, keepEmpty bool) {
	if offset > 0 {
		kept := res.Answers[:0]
		skip := offset
		for _, a := range res.Answers {
			rows := a.Answer.Rows
			if skip >= len(rows) {
				skip -= len(rows)
				if keepEmpty {
					a.Answer.Rows = rows[len(rows):]
					kept = append(kept, a)
				}
				continue
			}
			a.Answer.Rows = rows[skip:]
			skip = 0
			kept = append(kept, a)
		}
		res.Answers = kept
	}
	if limit > 0 {
		remaining := limit
		for i := range res.Answers {
			rows := res.Answers[i].Answer.Rows
			if len(rows) > remaining {
				res.Answers[i].Answer.Rows = rows[:remaining]
				res.Truncated = true
			}
			remaining -= len(res.Answers[i].Answer.Rows)
			if remaining <= 0 {
				for j := i + 1; j < len(res.Answers); j++ {
					if len(res.Answers[j].Answer.Rows) > 0 {
						res.Truncated = true
					}
				}
				res.Answers = res.Answers[:i+1]
				break
			}
		}
	}
	if res.Truncated {
		delivered := 0
		for _, a := range res.Answers {
			delivered += len(a.Answer.Rows)
		}
		res.NextCursor = encodeCursor(offset+delivered, fp, gen)
	}
}

// Run executes the request against the corpus: the whole membership,
// or the member named by Request.Doc (fanning out over its shards).
// Cancellation and deadlines on ctx stop the member fan-out mid-flight
// and return ctx.Err().
func (c *Corpus) Run(ctx context.Context, req Request) (*Result, error) {
	start := time.Now()
	if err := req.validate(); err != nil {
		return nil, err
	}
	var res *Result
	var err error
	if req.isQuery() {
		res, err = c.runQuery(ctx, req)
	} else {
		res, err = drainResults(c.ResultsWithStats(ctx, req))
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunStream delivers the ranked meets of a term request one at a time.
func (c *Corpus) RunStream(ctx context.Context, req Request, yield func(CorpusMeet) bool) error {
	return streamMeets(ctx, c, req, yield)
}

// resolve returns the fan-out units of the request — the whole
// membership, or the shards of the named member — plus the corpus
// generation the snapshot was taken at (the staleness mark of minted
// cursors).
func (c *Corpus) resolve(doc string) ([]member, int, uint64, error) {
	if doc == "" {
		members, workers, gen := c.snapshot()
		return members, workers, gen, nil
	}
	members, workers, gen, found := c.memberOf(doc)
	if !found {
		return nil, 0, 0, fmt.Errorf("ncq: corpus: %w %q", ErrUnknownDoc, doc)
	}
	return members, workers, gen, nil
}

// runQuery evaluates a query-language request: parsed once, evaluated
// per member concurrently, shard answers merged per logical name.
func (c *Corpus) runQuery(ctx context.Context, req Request) (*Result, error) {
	offset, curGen, err := req.page()
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		return nil, err
	}
	members, workers, gen, err := c.resolve(req.Doc)
	if err != nil {
		return nil, err
	}
	if req.Cursor != "" && curGen != gen {
		return nil, fmt.Errorf("ncq: %w: the corpus changed since this cursor was minted", ErrStaleCursor)
	}
	answers := make([]*Answer, len(members))
	err = forEachDoc(ctx, len(members), workers, func(i int) error {
		ans, err := members[i].db.engine.Eval(q)
		if err != nil {
			return fmt.Errorf("ncq: corpus %q: %w", members[i].name, err)
		}
		answers[i] = ans
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if req.Doc != "" {
		res.Answers = []CorpusAnswer{{Source: req.Doc, Answer: mergeAnswers(answers)}}
	} else {
		// Merge shard answers per logical member, omitting members whose
		// answer has no rows: with nearest concept queries the
		// interesting outcome is where the terms meet, not where they
		// do not.
		for i := 0; i < len(members); {
			j := i + 1
			for j < len(members) && members[j].name == members[i].name {
				j++
			}
			merged := mergeAnswers(answers[i:j])
			if merged != nil && len(merged.Rows) > 0 {
				res.Answers = append(res.Answers, CorpusAnswer{Source: members[i].name, Answer: merged})
			}
			i = j
		}
	}
	pageAnswerRows(res, offset, req.Limit, req.fingerprint(), gen, req.Doc != "")
	return res, nil
}
